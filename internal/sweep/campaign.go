// Package sweep is the batch campaign engine: it expands a JSON campaign
// specification — a cross product of topology, policy, update-period,
// population and seed axes — into a deterministic task list, executes the
// tasks on a worker pool with streaming JSONL results, and aggregates the
// records into per-cell summary tables. It turns the one-run simulators
// (dynamics, agents) into a high-throughput exploration machine for the
// paper's scaling-law questions.
package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"strconv"

	"wardrop/internal/canon"
	"wardrop/internal/catalog"
	"wardrop/internal/engine"
	"wardrop/internal/flow"
	"wardrop/internal/meanfield"
	"wardrop/internal/policy"
	"wardrop/internal/timeline"
	"wardrop/internal/topo"

	// Register the "custom" topology family (embedded instance documents).
	_ "wardrop/internal/spec"
	// Register the "tntp" topology family (road networks loaded from disk).
	_ "wardrop/internal/tntp"
)

// Sentinel errors.
var (
	// ErrBadCampaign indicates a structurally invalid campaign specification.
	ErrBadCampaign = errors.New("sweep: invalid campaign specification")
)

// badCampaign wraps errors from the catalog and component layers with the
// package sentinel, leaving already-tagged errors untouched.
func badCampaign(err error) error { return catalog.WrapSentinel(ErrBadCampaign, err) }

// Campaign is the JSON document shape: the axes whose cross product is the
// task list, plus run-shape scalars shared by every task.
type Campaign struct {
	// Name labels the campaign; output files are derived from it.
	Name string `json:"name"`

	// Axes. The cross product Topologies × Policies × UpdatePeriods ×
	// Agents × Seeds is expanded in this nesting order (seeds innermost),
	// so task IDs are reproducible across runs and machines.

	// Topologies lists the instances to sweep.
	Topologies []Topology `json:"topologies"`
	// Policies lists the rerouting policies.
	Policies []PolicySpec `json:"policies"`
	// UpdatePeriods lists bulletin-board periods: numbers, or "safe" for the
	// per-(instance, policy) provably safe period of Corollary 5.
	UpdatePeriods []Period `json:"updatePeriods"`
	// Agents lists population sizes; 0 runs the fluid limit, N > 0 the
	// finite-N per-agent stochastic simulator (N is capped at
	// engine.MaxAgentPopulation — larger populations go on the Counts axis).
	Agents []int `json:"agents,omitempty"`
	// Counts lists population sizes for the mean-field count engine, which
	// runs the identical stochastic process as per-path counts at O(paths)
	// per phase — the axis for populations the per-agent engine can't hold
	// (millions and up). Combined with Agents it forms one population axis,
	// Agents entries first.
	Counts []int64 `json:"counts,omitempty"`
	// Timelines, when non-empty, turns the timeline block into a sweep axis
	// (between the delta and seed axes): each entry modulates every cell's
	// runs with its demand schedules, edge events and tolls (see package
	// timeline). An empty axis runs every cell stationary, exactly as before.
	Timelines []TimelineSpec `json:"timelines,omitempty"`
	// Seeds is the number of replicate runs per cell (default 1). Each task
	// derives its own seed from BaseSeed and the task index.
	Seeds int `json:"seeds,omitempty"`
	// BaseSeed feeds the per-task seed derivation (splitmix64).
	BaseSeed uint64 `json:"baseSeed,omitempty"`

	// Run-shape scalars.

	// Horizon is the simulated-time budget per run. Ignored when MaxPhases
	// is set.
	Horizon float64 `json:"horizon,omitempty"`
	// MaxPhases, if positive, sets the budget to MaxPhases bulletin-board
	// phases (horizon = MaxPhases·T per task).
	MaxPhases int `json:"maxPhases,omitempty"`
	// Start selects the initial flow: "uniform" (default), "worst" (each
	// commodity entirely on its highest free-flow-latency path) or "skewed"
	// (90% on that path, the rest spread evenly).
	Start string `json:"start,omitempty"`
	// Delta, Eps parameterise the (δ,ε)-equilibrium accounting; Delta <= 0
	// disables it.
	Delta float64 `json:"delta,omitempty"`
	Eps   float64 `json:"eps,omitempty"`
	// Deltas, when non-empty, turns δ into a sweep axis (between the
	// population and seed axes) overriding the scalar Delta.
	Deltas []float64 `json:"deltas,omitempty"`
	// Weak selects the weak (δ,ε) metric (Definition 4).
	Weak bool `json:"weak,omitempty"`
	// Streak stops a run after this many consecutive phases starting at the
	// configured approximate equilibrium (0 disables).
	Streak int `json:"streak,omitempty"`
}

// Topology selects one instance family plus its parameters, resolved
// through the topology catalog — any registered family (builtin or
// user-added) is selectable by name.
type Topology struct {
	// Family: pigou, braess, kink, links, grid, layered, custom, or any
	// registered topology family.
	Family string `json:"family"`
	// Size is the family's size knob: link count (links), grid side (grid),
	// layer width (layered).
	Size int `json:"size,omitempty"`
	// Layers is the hidden-layer count for layered (default 3).
	Layers int `json:"layers,omitempty"`
	// Beta is the kink slope (family=kink).
	Beta float64 `json:"beta,omitempty"`
	// Instance embeds a full instance spec (family=custom).
	Instance json.RawMessage `json:"instance,omitempty"`
	// Params carries a user-registered family's parameters (decode with
	// catalog.DecodeParams). Builtin families read the flat fields above and
	// also honour overrides placed here (a field present in both spellings
	// resolves to the params value).
	Params json.RawMessage `json:"params,omitempty"`
}

// builder resolves the family through the topology catalog, decoding and
// validating the parameters.
func (t Topology) builder() (topo.Builder, error) {
	args, err := t.args()
	if err != nil {
		return topo.Builder{}, err
	}
	return topo.Catalog.Build(t.Family, args)
}

// args renders the selecting document for the catalog. The embedded custom
// instance is spliced in verbatim rather than re-marshalled: the "custom"
// family labels cells with a digest of the document bytes, and re-encoding
// (compaction, HTML escaping) would silently change the labels of existing
// campaign files across releases.
func (t Topology) args() (json.RawMessage, error) {
	inst := t.Instance
	t.Instance = nil
	b, err := json.Marshal(t)
	if err != nil {
		return nil, err
	}
	if len(inst) == 0 {
		return b, nil
	}
	// b is a non-empty JSON object (family is never omitted); splice the
	// verbatim instance bytes before the closing brace.
	var buf bytes.Buffer
	buf.Grow(len(b) + len(inst) + len(`,"instance":`))
	buf.Write(b[:len(b)-1])
	buf.WriteString(`,"instance":`)
	buf.Write(inst)
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// Key renders the topology as a stable human-readable cell label. Invalid
// selections fall back to the bare family name; they never survive
// Validate, so only valid topologies are ever aggregated.
func (t Topology) Key() string {
	b, err := t.builder()
	if err != nil {
		return t.Family
	}
	return b.Key
}

// seeded reports whether the instance itself depends on the task seed.
func (t Topology) seeded() bool {
	b, err := t.builder()
	return err == nil && b.Seeded
}

// Build materialises the instance. Only seeded families use the seed.
func (t Topology) Build(seed uint64) (*flow.Instance, error) {
	b, err := t.builder()
	if err != nil {
		return nil, badCampaign(err)
	}
	return b.New(seed)
}

// Validate rejects obviously bad parameters at parse time so errors surface
// before any worker starts.
func (t Topology) Validate() error {
	_, err := t.builder()
	return badCampaign(err)
}

// TimelineSpec is one timelines-axis entry: a timeline block (inlined —
// schedules, events, tolls) plus an optional name used as the entry's cell
// label. Unnamed entries label themselves with a digest of their canonical
// form, so distinct timelines never collide in aggregation keys.
type TimelineSpec struct {
	// Name labels the entry in cell keys and summary tables.
	Name string `json:"name,omitempty"`
	timeline.Spec

	// key caches the resolved label. Expand precomputes it once per axis
	// entry (single-threaded) so workers sharing the entry only read it;
	// hand-constructed specs recompute per call instead of writing.
	key string
}

// Key renders the entry as a stable cell label: the name, or "tl:" plus the
// first 8 hex digits of the timeline's canonical-JSON fingerprint. Nil-safe
// (a nil entry — the stationary run — labels as the empty string).
func (ts *TimelineSpec) Key() string {
	if ts == nil {
		return ""
	}
	if ts.key != "" {
		return ts.key
	}
	return timelineKey(ts)
}

// timelineKey computes the label without touching the cache.
func timelineKey(ts *TimelineSpec) string {
	if ts.Name != "" {
		return ts.Name
	}
	fp, err := canon.Fingerprint(&ts.Spec)
	if err != nil || len(fp) < 8 {
		return "tl"
	}
	return "tl:" + fp[:8]
}

// Validate checks the timeline block (instance-independent shape; commodity
// names and edge addresses resolve per task).
func (ts *TimelineSpec) Validate() error {
	return badCampaign(ts.Spec.Validate())
}

// PolicySpec selects a rerouting policy — a sampling rule plus an optional
// non-default migration rule — resolved through the policy catalogs, so any
// registered sampler or migrator (builtin or user-added) is selectable by
// name.
type PolicySpec struct {
	// Kind is the sampling rule: uniform, replicator (or its alias
	// proportional), boltzmann, or any registered sampler.
	Kind string `json:"kind"`
	// C is the Boltzmann concentration (kind=boltzmann).
	C float64 `json:"c,omitempty"`
	// Migrator overrides the migration rule: "" or "linear" (default,
	// (1/ℓmax)-smooth), "alphalinear" (min{1, α·gain}), "betterresponse"
	// (not α-smooth; incompatible with the "safe" period), or any registered
	// migrator.
	Migrator string `json:"migrator,omitempty"`
	// Alpha is the alphalinear smoothness parameter.
	Alpha float64 `json:"alpha,omitempty"`
	// Params carries user-registered sampler/migrator parameters (decode
	// with catalog.DecodeParams); builtin rules use the flat fields above.
	// Like the flat fields, the object is one per-policy-document namespace
	// shared by the sampler and the migrator selections — registrants should
	// avoid reusing the builtin parameter names (c, alpha) for unrelated
	// custom parameters, as builtins also honour overrides placed here.
	Params json.RawMessage `json:"params,omitempty"`
}

// choices resolves the sampling and migration rules through the policy
// catalogs, decoding and validating parameters.
func (p PolicySpec) choices() (policy.SamplerChoice, policy.MigratorChoice, error) {
	args, err := json.Marshal(p)
	if err != nil {
		return policy.SamplerChoice{}, policy.MigratorChoice{}, err
	}
	sc, err := policy.Samplers.Build(p.Kind, args)
	if err != nil {
		return policy.SamplerChoice{}, policy.MigratorChoice{}, err
	}
	migrator := p.Migrator
	if migrator == "" {
		migrator = "linear"
	}
	mc, err := policy.Migrators.Build(migrator, args)
	if err != nil {
		return policy.SamplerChoice{}, policy.MigratorChoice{}, err
	}
	return sc, mc, nil
}

// Key renders the policy as a stable cell label: the sampler's label plus
// the migrator's suffix (the default linear rule contributes nothing).
// Invalid selections fall back to the bare names; they never survive
// Validate.
func (p PolicySpec) Key() string {
	sc, mc, err := p.choices()
	if err != nil {
		if p.Migrator == "" || p.Migrator == "linear" {
			return p.Kind
		}
		return p.Kind + "+" + p.Migrator
	}
	return sc.Key + mc.KeySuffix
}

// Build materialises the policy for an instance (the default linear migrator
// is sized to the instance's ℓmax).
func (p PolicySpec) Build(inst *flow.Instance) (policy.Policy, error) {
	sc, mc, err := p.choices()
	if err != nil {
		return policy.Policy{}, badCampaign(err)
	}
	migrator, err := mc.New(inst.LMax())
	if err != nil {
		return policy.Policy{}, badCampaign(err)
	}
	return policy.Policy{Sampler: sc.Sampler, Migrator: migrator}, nil
}

// Validate rejects bad sampler/migrator selections at parse time, before
// any instance exists to size the migration rule against.
func (p PolicySpec) Validate() error {
	_, _, err := p.choices()
	return badCampaign(err)
}

// Period is one update-period axis value: either the literal "safe" (resolve
// the Corollary 5 period per instance and policy) or a positive number.
type Period struct {
	// Safe selects the per-task safe period.
	Safe bool
	// T is the fixed period when Safe is false.
	T float64
}

// UnmarshalJSON accepts the string "safe" or a positive JSON number.
func (p *Period) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		if s != "safe" {
			return fmt.Errorf("%w: period string %q (want \"safe\" or a number)", ErrBadCampaign, s)
		}
		*p = Period{Safe: true}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return fmt.Errorf("%w: bad period %s", ErrBadCampaign, b)
	}
	if v <= 0 {
		return fmt.Errorf("%w: period %g must be positive", ErrBadCampaign, v)
	}
	*p = Period{T: v}
	return nil
}

// MarshalJSON renders the period back as "safe" or a number.
func (p Period) MarshalJSON() ([]byte, error) {
	if p.Safe {
		return json.Marshal("safe")
	}
	return json.Marshal(p.T)
}

// String renders the period as a cell label. The shortest lossless float
// form is used so distinct periods never collide in aggregation keys.
func (p Period) String() string {
	if p.Safe {
		return "safe"
	}
	return strconv.FormatFloat(p.T, 'g', -1, 64)
}

// Task is one cell × seed of the expanded campaign. IDs are consecutive from
// 0 in expansion order. The derived Seed depends only on (BaseSeed, topology,
// SeedIndex): replicate s of every cell sharing a topology draws the same
// seed — seeded instance families are paired across policies/periods/
// populations so cell-vs-cell comparisons see the same random graphs — and
// editing other axes of a campaign never reshuffles existing seeds.
type Task struct {
	ID       int
	Topology Topology
	Policy   PolicySpec
	Period   Period
	Agents   int
	// Count, when > 0, runs the cell on the mean-field count engine with
	// this population (mutually exclusive with Agents > 0 by construction —
	// the two fields come from different axis lists).
	Count int64
	// Delta is the task's (δ,ε) accounting width (from the Deltas axis, or
	// the campaign scalar).
	Delta float64
	// Timeline is the task's timelines-axis entry (nil = stationary run).
	// Tasks of one axis entry share the pointer; the entry is never mutated
	// after expansion.
	Timeline  *TimelineSpec
	SeedIndex int
	Seed      uint64

	// meta caches the catalog resolution performed once per axis entry at
	// expansion time (labels and seededness only — plain comparable values),
	// so workers do not re-pay the resolution (for custom topologies, a full
	// decode of the embedded instance document) per task. Hand-constructed
	// tasks leave it nil and resolve lazily.
	meta *taskMeta
}

// taskMeta is the expansion-time catalog resolution shared by every task of
// one (topology, policy) axis pair.
type taskMeta struct {
	topoKey   string
	policyKey string
	seeded    bool
}

// topologyLabel, policyLabel and topologySeeded return the cached
// resolution, falling back to fresh catalog lookups for tasks not created by
// Expand.
func (t Task) topologyLabel() string {
	if t.meta != nil {
		return t.meta.topoKey
	}
	return t.Topology.Key()
}

func (t Task) policyLabel() string {
	if t.meta != nil {
		return t.meta.policyKey
	}
	return t.Policy.Key()
}

func (t Task) topologySeeded() bool {
	if t.meta != nil {
		return t.meta.seeded
	}
	return t.Topology.seeded()
}

// cellKey is the shared aggregation-cell label: every axis except the seed.
// Task.CellKey and the aggregation pass must agree on it. The timeline
// component is appended only when present, so stationary campaigns keep
// their historical labels byte for byte.
func cellKey(topology, policy, period, pop string, delta float64, tl string) string {
	key := fmt.Sprintf("%s|%s|T=%s|N=%s|d=%g", topology, policy, period, pop, delta)
	if tl != "" {
		key += "|tl=" + tl
	}
	return key
}

// popLabel renders the population-axis component of a cell label: the agent
// count for fluid/per-agent cells (byte-identical to pre-count releases), or
// "count:<n>" for count-engine cells, so the two engines never collide in a
// cell even at equal populations.
func popLabel(agents int, count int64) string {
	if count > 0 {
		return fmt.Sprintf("count:%d", count)
	}
	return strconv.Itoa(agents)
}

// CellKey is the task's aggregation cell (every axis except the seed).
func (t Task) CellKey() string {
	return cellKey(t.topologyLabel(), t.policyLabel(), t.Period.String(), popLabel(t.Agents, t.Count), t.Delta, t.Timeline.Key())
}

// Validate checks the campaign's axes and scalars without building instances.
func (c *Campaign) Validate() error {
	if len(c.Topologies) == 0 {
		return fmt.Errorf("%w: no topologies", ErrBadCampaign)
	}
	if len(c.Policies) == 0 {
		return fmt.Errorf("%w: no policies", ErrBadCampaign)
	}
	if len(c.UpdatePeriods) == 0 {
		return fmt.Errorf("%w: no update periods", ErrBadCampaign)
	}
	for _, t := range c.Topologies {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	for _, p := range c.Policies {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	for _, n := range c.Agents {
		if n < 0 {
			return fmt.Errorf("%w: agents %d must be >= 0", ErrBadCampaign, n)
		}
		if n > engine.MaxAgentPopulation {
			return fmt.Errorf("%w: agents %d exceeds the per-agent engine's cap %d; put the population on the counts axis (the mean-field count engine runs the identical process at any size)", ErrBadCampaign, n, engine.MaxAgentPopulation)
		}
	}
	for _, n := range c.Counts {
		if n < 1 {
			return fmt.Errorf("%w: counts %d must be >= 1 (0-population cells belong on the agents axis as the fluid limit)", ErrBadCampaign, n)
		}
		if n > meanfield.MaxPopulation {
			return fmt.Errorf("%w: counts %d exceeds the exactly representable population %d", ErrBadCampaign, n, meanfield.MaxPopulation)
		}
	}
	if c.Seeds < 0 {
		return fmt.Errorf("%w: seeds %d must be >= 0", ErrBadCampaign, c.Seeds)
	}
	if math.IsNaN(c.Horizon) || math.IsInf(c.Horizon, 0) || math.IsNaN(c.Delta) || math.IsNaN(c.Eps) {
		return fmt.Errorf("%w: horizon/delta/eps must be finite", ErrBadCampaign)
	}
	// Fail fast on the engine-level rejection every task would hit anyway.
	if c.Eps < 0 && (c.Delta > 0 || len(c.Deltas) > 0) {
		return fmt.Errorf("%w: eps %g must be >= 0 when delta accounting is enabled", ErrBadCampaign, c.Eps)
	}
	if c.Horizon <= 0 && c.MaxPhases <= 0 {
		return fmt.Errorf("%w: need horizon > 0 or maxPhases > 0", ErrBadCampaign)
	}
	if c.MaxPhases < 0 {
		return fmt.Errorf("%w: maxPhases %d must be >= 0", ErrBadCampaign, c.MaxPhases)
	}
	if _, err := engine.LookupStart(c.Start); err != nil {
		return badCampaign(err)
	}
	for _, d := range c.Deltas {
		if d <= 0 {
			return fmt.Errorf("%w: delta axis value %g must be positive", ErrBadCampaign, d)
		}
	}
	for i := range c.Timelines {
		if err := c.Timelines[i].Validate(); err != nil {
			return fmt.Errorf("timelines[%d]: %w", i, err)
		}
	}
	return nil
}

// Expand materialises the deterministic task list: the cross product of the
// axes in declaration order with seeds innermost. Every task's derived seed
// is a pure function of (BaseSeed, topology, SeedIndex) — see Task.
func (c *Campaign) Expand() ([]Task, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	// The population axis merges Agents and Counts (Agents entries first);
	// an empty axis degenerates to one fluid-limit entry, as before.
	type popEntry struct {
		agents int
		count  int64
	}
	pops := make([]popEntry, 0, len(c.Agents)+len(c.Counts))
	for _, n := range c.Agents {
		pops = append(pops, popEntry{agents: n})
	}
	for _, n := range c.Counts {
		pops = append(pops, popEntry{count: n})
	}
	if len(pops) == 0 {
		pops = []popEntry{{}}
	}
	deltas := c.Deltas
	if len(deltas) == 0 {
		deltas = []float64{c.Delta}
	}
	// The timeline axis degenerates to one stationary (nil) entry. Labels
	// are resolved here, once per entry, so workers sharing an entry's
	// pointer never write to it.
	tls := make([]*TimelineSpec, 0, len(c.Timelines))
	for i := range c.Timelines {
		c.Timelines[i].key = timelineKey(&c.Timelines[i])
		tls = append(tls, &c.Timelines[i])
	}
	if len(tls) == 0 {
		tls = []*TimelineSpec{nil}
	}
	seeds := c.Seeds
	if seeds == 0 {
		seeds = 1
	}
	tasks := make([]Task, 0, len(c.Topologies)*len(c.Policies)*len(c.UpdatePeriods)*len(pops)*len(deltas)*len(tls)*seeds)
	id := 0
	for _, tp := range c.Topologies {
		// Resolve the catalog once per axis entry; every task of the entry
		// shares the result instead of re-paying resolution in the workers.
		b, err := tp.builder()
		if err != nil {
			return nil, badCampaign(err)
		}
		// Seeds are a pure function of (BaseSeed, topology, replicate):
		// fold the topology label into the base so distinct topologies get
		// independent streams while cells sharing one stay paired.
		h := fnv.New64a()
		h.Write([]byte(b.Key))
		topoBase := c.BaseSeed ^ h.Sum64()
		for _, pol := range c.Policies {
			meta := &taskMeta{topoKey: b.Key, policyKey: pol.Key(), seeded: b.Seeded}
			for _, per := range c.UpdatePeriods {
				for _, n := range pops {
					for _, d := range deltas {
						for _, tl := range tls {
							for s := 0; s < seeds; s++ {
								tasks = append(tasks, Task{
									ID:        id,
									Topology:  tp,
									Policy:    pol,
									Period:    per,
									Agents:    n.agents,
									Count:     n.count,
									Delta:     d,
									Timeline:  tl,
									SeedIndex: s,
									Seed:      topo.DeriveSeed(topoBase, uint64(s)),
									meta:      meta,
								})
								id++
							}
						}
					}
				}
			}
		}
	}
	return tasks, nil
}

// ParseCampaign decodes a JSON campaign specification, rejecting unknown
// fields, and validates it.
func ParseCampaign(r io.Reader) (*Campaign, error) {
	var c Campaign
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCampaign, err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}
