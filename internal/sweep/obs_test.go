package sweep

import (
	"context"
	"strings"
	"testing"

	"wardrop/internal/obs"
)

// TestRunPopulatesTaskHistograms pins the pool's instrumentation: one
// aggregate sample per simulated task group (duplicates clone a
// representative and are not re-timed) and a per-worker histogram per pool
// slot.
func TestRunPopulatesTaskHistograms(t *testing.T) {
	c := parseDemo(t)
	tasks, err := c.Expand()
	if err != nil {
		t.Fatal(err)
	}
	groups := dedupTasks(tasks)

	reg := obs.NewRegistry()
	res, err := Run(context.Background(), parseDemo(t), Options{Workers: 3, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(tasks) {
		t.Fatalf("records = %d, want %d", len(res.Records), len(tasks))
	}

	agg := reg.FindHistogram("sweep_task_ms")
	if agg == nil || agg.Count() != int64(len(groups)) {
		t.Fatalf("aggregate samples = %v, want one per task group (%d)", agg, len(groups))
	}
	perWorker := 0
	var perWorkerCount int64
	for _, name := range reg.Names() {
		if strings.HasPrefix(name, `sweep_task_ms{worker=`) {
			perWorker++
			perWorkerCount += reg.FindHistogram(name).Count()
		}
	}
	if perWorker != 3 {
		t.Fatalf("per-worker histograms = %d, want 3 (have %v)", perWorker, reg.Names())
	}
	if perWorkerCount != agg.Count() {
		t.Fatalf("per-worker samples = %d, aggregate = %d", perWorkerCount, agg.Count())
	}
	if agg.Quantile(0.99) < agg.Quantile(0.50) {
		t.Fatalf("p99 %g < p50 %g", agg.Quantile(0.99), agg.Quantile(0.50))
	}
}
