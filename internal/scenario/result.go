package scenario

import (
	"encoding/json"
	"io"

	"wardrop/internal/engine"
	"wardrop/internal/timeline"
)

// TrajectorySample is one recorded trajectory point of a RunResult.
type TrajectorySample struct {
	Time      float64   `json:"time"`
	Potential float64   `json:"potential"`
	Flow      []float64 `json:"flow"`
}

// RunResult is the canonical JSON result document of one scenario run — the
// single shape shared by `wardsim -scenario -json` and the serving layer's
// POST /v1/scenarios response, so the two are byte-identical for the same
// spec by construction.
type RunResult struct {
	// Name echoes the spec's informational label.
	Name string `json:"name,omitempty"`
	// Fingerprint is the spec's canonical-JSON SHA-256 (see Spec.Fingerprint).
	Fingerprint string `json:"fingerprint"`
	// Phases, Elapsed, FinalPotential, UnsatisfiedPhases and Converged
	// mirror the engine result.
	Phases            int     `json:"phases"`
	Elapsed           float64 `json:"elapsed"`
	FinalPotential    float64 `json:"finalPotential"`
	UnsatisfiedPhases int     `json:"unsatisfiedPhases"`
	Converged         bool    `json:"converged"`
	// Final is the flow at the end of the run.
	Final []float64 `json:"final"`
	// Trajectory holds the recorded samples (absent unless the spec set
	// recordEvery).
	Trajectory []TrajectorySample `json:"trajectory,omitempty"`
	// Events lists the timeline events replayed into the run, in firing
	// order (absent for stationary specs).
	Events []timeline.AppliedEvent `json:"events,omitempty"`
}

// NewRunResult assembles the result document for a completed run of the
// spec; events is the replayed-event list Spec.Run returned (nil for
// stationary runs).
func NewRunResult(s *Spec, res *engine.Result, events []timeline.AppliedEvent) (RunResult, error) {
	fp, err := s.Fingerprint()
	if err != nil {
		return RunResult{}, err
	}
	doc := RunResult{
		Name:              s.Name,
		Fingerprint:       fp,
		Phases:            res.Phases,
		Elapsed:           res.Elapsed,
		FinalPotential:    res.FinalPotential,
		UnsatisfiedPhases: res.UnsatisfiedPhases,
		Converged:         res.Stopped,
		Final:             res.Final,
		Events:            events,
	}
	if len(res.Trajectory) > 0 {
		doc.Trajectory = make([]TrajectorySample, len(res.Trajectory))
		for i, sm := range res.Trajectory {
			doc.Trajectory[i] = TrajectorySample{Time: sm.Time, Potential: sm.Potential, Flow: sm.Flow}
		}
	}
	return doc, nil
}

// Encode writes the document as one compact JSON line (with trailing
// newline) — the exact bytes both emitters produce.
func (r RunResult) Encode(w io.Writer) error {
	return json.NewEncoder(w).Encode(r)
}
