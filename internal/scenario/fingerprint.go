package scenario

import "wardrop/internal/canon"

// Canonical renders the specification in its canonical JSON form: object
// keys sorted, whitespace stripped, absent and zero-valued optional fields
// identical (the spec marshals with omitempty). Two spec files that differ
// only in field order or formatting canonicalise to the same bytes.
func (s *Spec) Canonical() ([]byte, error) {
	return canon.Canonical(s)
}

// Fingerprint is the canonical-JSON SHA-256 of the specification — the
// stable identity the serving layer keys its result cache on. It covers
// every field of the spec (including the informational Name), so any edit
// changes the fingerprint while reordering or reformatting does not. Number
// literals inside an embedded raw instance document are preserved verbatim.
func (s *Spec) Fingerprint() (string, error) {
	return canon.Fingerprint(s)
}
