package scenario

import (
	"strings"
	"testing"
)

// The two spellings of the same scenario: field order shuffled, whitespace
// reflowed, explicit zero-valued optionals dropped. They must parse to the
// same spec and fingerprint identically.
const (
	pigouDocA = `{
  "name": "pigou-replicator",
  "topology": {"family": "pigou"},
  "policy": {"kind": "replicator"},
  "updatePeriod": "safe",
  "horizon": 50,
  "recordEvery": 5
}`
	pigouDocB = `{"recordEvery":5,"horizon":50,
		"policy":{"kind":"replicator"},"updatePeriod":"safe",
		"topology":{"family":"pigou"},"name":"pigou-replicator"}`
)

// goldenPigouFingerprint pins the hash across releases: a changed canonical
// encoding would silently invalidate every deployed result cache, so any
// change here must be deliberate.
const goldenPigouFingerprint = "2db6c43f44a9c9225940ab77143300ea8b668b849c815900e867cb0ae397cd44"

func parseSpec(t *testing.T, doc string) *Spec {
	t.Helper()
	s, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFingerprintGolden(t *testing.T) {
	s := parseSpec(t, pigouDocA)
	fp, err := s.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp != goldenPigouFingerprint {
		t.Fatalf("fingerprint = %s, want pinned %s (a canonical-encoding change invalidates deployed caches)", fp, goldenPigouFingerprint)
	}
}

func TestFingerprintFieldOrderAndWhitespaceInsensitive(t *testing.T) {
	a, err := parseSpec(t, pigouDocA).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := parseSpec(t, pigouDocB).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("reordered spellings fingerprint differently: %s vs %s", a, b)
	}
}

func TestFingerprintSeesSemanticEdits(t *testing.T) {
	base, err := parseSpec(t, pigouDocA).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	edits := map[string]string{
		"name":    strings.Replace(pigouDocA, "pigou-replicator", "other", 1),
		"policy":  strings.Replace(pigouDocA, "replicator", "uniform", 1),
		"horizon": strings.Replace(pigouDocA, `"horizon": 50`, `"horizon": 51`, 1),
	}
	for field, doc := range edits {
		fp, err := parseSpec(t, doc).Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if fp == base {
			t.Errorf("editing %s did not change the fingerprint", field)
		}
	}
}

func TestCanonicalEmbeddedInstancePreserved(t *testing.T) {
	// Embedded raw instance documents canonicalise (keys sort, whitespace
	// drops) without re-formatting number literals.
	doc := `{"horizon":10,"policy":{"kind":"uniform"},"updatePeriod":0.5,"instance":{
		"nodes": ["s", "t"],
		"edges": [
			{"from": "s", "to": "t", "latency": {"kind": "linear", "slope": 1.0}},
			{"from": "s", "to": "t", "latency": {"kind": "constant", "c": 1}}],
		"commodities": [{"source": "s", "sink": "t", "demand": 1}]}}`
	s := parseSpec(t, doc)
	b, err := s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"slope":1.0`) {
		t.Fatalf("canonical form rewrote the 1.0 literal: %s", b)
	}
	if strings.ContainsAny(string(b), "\n\t ") {
		t.Fatalf("canonical form retains whitespace: %s", b)
	}
}
