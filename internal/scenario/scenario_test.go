package scenario

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"wardrop/internal/engine"
	"wardrop/internal/policy"
	"wardrop/internal/sweep"
	"wardrop/internal/timeline"
	"wardrop/internal/topo"
)

const braessScenario = `{
  "name": "braess-replicator",
  "topology": {"family": "braess"},
  "policy": {"kind": "replicator"},
  "updatePeriod": "safe",
  "horizon": 10,
  "recordEvery": 2
}`

func TestParseAndRun(t *testing.T) {
	s, err := Parse(strings.NewReader(braessScenario))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := s.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Instance == nil || sc.UpdatePeriod <= 0 || sc.Horizon != 10 || sc.RecordEvery != 2 {
		t.Fatalf("scenario = %+v", sc)
	}
	res, err := engine.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases == 0 || len(res.Trajectory) == 0 {
		t.Errorf("phases=%d trajectory=%d", res.Phases, len(res.Trajectory))
	}
}

// A scenario file must reproduce the equivalent hand-assembled engine run
// exactly: same instance, policy, safe period, start flow and engine — the
// declarative layer adds no behavior of its own.
func TestScenarioMatchesHandAssembledRun(t *testing.T) {
	s, err := Parse(strings.NewReader(braessScenario))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := s.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	got, err := engine.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}

	inst, err := topo.Braess()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := policy.Replicator(inst.LMax())
	if err != nil {
		t.Fatal(err)
	}
	T, err := policy.SafeUpdatePeriodFor(pol, inst.Beta(), inst.MaxPathLen())
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.Run(context.Background(), engine.Scenario{
		Instance:     inst,
		Policy:       pol,
		UpdatePeriod: T,
		Horizon:      10,
		RecordEvery:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.FinalPotential != want.FinalPotential || got.Phases != want.Phases || got.Elapsed != want.Elapsed {
		t.Errorf("scenario run (phi=%g phases=%d) differs from hand-assembled run (phi=%g phases=%d)",
			got.FinalPotential, got.Phases, want.FinalPotential, want.Phases)
	}
	for i := range want.Final {
		if got.Final[i] != want.Final[i] {
			t.Errorf("final[%d] = %g, want %g", i, got.Final[i], want.Final[i])
		}
	}
}

func TestEmbeddedInstance(t *testing.T) {
	doc := `{
	  "instance": {
	    "nodes": ["s", "t"],
	    "edges": [
	      {"from": "s", "to": "t", "latency": {"kind": "linear", "slope": 1}},
	      {"from": "s", "to": "t", "latency": {"kind": "constant", "c": 1}}
	    ],
	    "commodities": [{"source": "s", "sink": "t", "demand": 1}]
	  },
	  "policy": {"kind": "uniform"},
	  "updatePeriod": 0.25,
	  "maxPhases": 8
	}`
	s, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := s.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	// maxPhases converts to horizon = maxPhases·T.
	if sc.Horizon != 8*0.25 {
		t.Errorf("horizon = %g, want 2", sc.Horizon)
	}
	if sc.Instance.NumPaths() != 2 {
		t.Errorf("paths = %d", sc.Instance.NumPaths())
	}
}

func TestBestResponseNeedsNoPolicy(t *testing.T) {
	doc := `{
	  "topology": {"family": "kink", "beta": 4},
	  "engine": {"kind": "bestresponse"},
	  "updatePeriod": 0.5,
	  "horizon": 5
	}`
	s, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := s.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sc.Engine.(engine.BestResponse); !ok {
		t.Errorf("engine = %T", sc.Engine)
	}
	if _, err := engine.Run(context.Background(), sc); err != nil {
		t.Fatal(err)
	}
}

func TestStartDistributions(t *testing.T) {
	for _, start := range []string{"", "uniform", "worst", "skewed"} {
		doc := `{
		  "topology": {"family": "pigou"},
		  "policy": {"kind": "uniform"},
		  "updatePeriod": 0.25,
		  "horizon": 1,
		  "start": "` + start + `"}`
		doc = strings.Replace(doc, `"start": ""`, `"name": "default"`, 1)
		s, err := Parse(strings.NewReader(doc))
		if err != nil {
			t.Fatalf("start %q: %v", start, err)
		}
		sc, err := s.Scenario()
		if err != nil {
			t.Fatalf("start %q: %v", start, err)
		}
		sum := 0.0
		for _, f := range sc.InitialFlow {
			sum += f
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("start %q: initial flow mass %g, want 1", start, sum)
		}
	}
}

func TestSeededTopology(t *testing.T) {
	doc := `{
	  "topology": {"family": "layered", "size": 2},
	  "seed": 99,
	  "policy": {"kind": "uniform"},
	  "updatePeriod": 0.1,
	  "horizon": 1
	}`
	a, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	sa, err := a.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := a.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	la := sa.Instance.PathLatencies(sa.Instance.UniformFlow())
	lb := sb.Instance.PathLatencies(sb.Instance.UniformFlow())
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("seeded topology not deterministic: %v vs %v", la, lb)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	cases := map[string]string{
		"nothing selected": `{"policy": {"kind": "uniform"}, "horizon": 1}`,
		"both selected":    `{"topology": {"family": "pigou"}, "instance": {"nodes": ["s","t"], "edges": [{"from":"s","to":"t","latency":{"kind":"constant"}}], "commodities": [{"source":"s","sink":"t","demand":1}]}, "policy": {"kind": "uniform"}, "horizon": 1}`,
		"bad family":       `{"topology": {"family": "moebius"}, "policy": {"kind": "uniform"}, "horizon": 1}`,
		"bad policy":       `{"topology": {"family": "pigou"}, "policy": {"kind": "psychic"}, "horizon": 1}`,
		"missing policy":   `{"topology": {"family": "pigou"}, "horizon": 1}`,
		"safe without policy": `{"topology": {"family": "kink", "beta": 4},
		  "engine": {"kind": "bestresponse"}, "horizon": 1}`,
		"no budget":          `{"topology": {"family": "pigou"}, "policy": {"kind": "uniform"}}`,
		"negative phases":    `{"topology": {"family": "pigou"}, "policy": {"kind": "uniform"}, "horizon": 1, "maxPhases": -1}`,
		"negative record":    `{"topology": {"family": "pigou"}, "policy": {"kind": "uniform"}, "horizon": 1, "recordEvery": -1}`,
		"negative streak":    `{"topology": {"family": "pigou"}, "policy": {"kind": "uniform"}, "horizon": 1, "streak": -1}`,
		"negative eps":       `{"topology": {"family": "pigou"}, "policy": {"kind": "uniform"}, "horizon": 1, "delta": 0.1, "eps": -1}`,
		"bad engine":         `{"topology": {"family": "pigou"}, "policy": {"kind": "uniform"}, "horizon": 1, "engine": {"kind": "warpdrive"}}`,
		"agents without n":   `{"topology": {"family": "pigou"}, "policy": {"kind": "uniform"}, "horizon": 1, "engine": {"kind": "agents"}}`,
		"bad start":          `{"topology": {"family": "pigou"}, "policy": {"kind": "uniform"}, "horizon": 1, "start": "sideways"}`,
		"bad period":         `{"topology": {"family": "pigou"}, "policy": {"kind": "uniform"}, "horizon": 1, "updatePeriod": -1}`,
		"unknown field":      `{"topology": {"family": "pigou"}, "policy": {"kind": "uniform"}, "horizon": 1, "bogus": 1}`,
		"malformed instance": `{"instance": {"nodes": [], "bogus": 1}, "policy": {"kind": "uniform"}, "horizon": 1}`,
		"bad json":           `{`,
		"bad timeline schedule": `{"topology": {"family": "pigou"}, "policy": {"kind": "uniform"}, "horizon": 1,
		  "timeline": {"schedules": [{"kind": "lunar"}]}}`,
		"bad timeline event": `{"topology": {"family": "pigou"}, "policy": {"kind": "uniform"}, "horizon": 1,
		  "timeline": {"events": [{"at": -1, "action": "restore", "edge": 0}]}}`,
		"bad timeline toll": `{"topology": {"family": "pigou"}, "policy": {"kind": "uniform"}, "horizon": 1,
		  "timeline": {"tolls": [{"kind": "constant", "amount": -1}]}}`,
	}
	for name, doc := range cases {
		_, err := Parse(strings.NewReader(doc))
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !errors.Is(err, ErrBadScenario) {
			t.Errorf("%s: error %v does not wrap ErrBadScenario", name, err)
		}
	}
}

// A structurally valid but unbuildable instance document (decodes fine,
// fails construction) surfaces at Scenario() time, wrapped in the package
// sentinel.
func TestUnbuildableInstanceFailsAtScenario(t *testing.T) {
	doc := `{"instance": {"nodes": ["s"], "edges": [], "commodities": []}, "policy": {"kind": "uniform"}, "horizon": 1}`
	s, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Scenario(); !errors.Is(err, ErrBadScenario) {
		t.Errorf("Scenario() err = %v, want ErrBadScenario", err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	s := &Spec{
		Name:         "rt",
		Topology:     &sweep.Topology{Family: "links", Size: 4},
		Policy:       &sweep.PolicySpec{Kind: "boltzmann", C: 2},
		UpdatePeriod: &sweep.Period{T: 0.5},
		Engine:       &engine.Spec{Kind: "agents", N: 100, Seed: 7},
		Start:        "skewed",
		Horizon:      5,
		RecordEvery:  1,
		Delta:        0.2,
		Eps:          0.1,
		Streak:       3,
	}
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(strings.NewReader(string(data)))
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, data)
	}
	if back.Topology.Family != "links" || back.Policy.C != 2 || back.Engine.N != 100 || back.UpdatePeriod.T != 0.5 {
		t.Errorf("round trip lost fields: %+v", back)
	}
}

const onsetScenario = `{
  "name": "braess-onset",
  "topology": {"family": "braess"},
  "policy": {"kind": "uniform"},
  "updatePeriod": 0.25,
  "horizon": 20,
  "timeline": {
    "events": [
      {"at": 0, "action": "block", "from": "a", "to": "b", "penalty": 4},
      {"at": 10, "action": "restore", "from": "a", "to": "b"}
    ]
  }
}`

// A timeline with schedules or events needs segmented execution: Scenario()
// must refuse it (wrapping the package sentinel), while Run executes it and
// returns the replayed events.
func TestTimelineNeedsRun(t *testing.T) {
	s, err := Parse(strings.NewReader(onsetScenario))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Scenario(); err == nil || !errors.Is(err, ErrBadScenario) {
		t.Fatalf("Scenario() on a segmented timeline returned %v, want ErrBadScenario", err)
	}
	var seen int
	res, events, err := s.Run(context.Background(), func(timeline.AppliedEvent) { seen++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || seen != 2 {
		t.Fatalf("replayed %d events (callback saw %d), want 2", len(events), seen)
	}
	if res.Elapsed != 20 {
		t.Fatalf("elapsed %g, want 20", res.Elapsed)
	}
}

// Tolls alone do not need a program: Scenario() materialises the tolled
// instance directly, and Run on such a spec equals engine.Run on it.
func TestTimelineTollsOnlyScenario(t *testing.T) {
	doc := `{"topology": {"family": "pigou"}, "policy": {"kind": "replicator"}, "updatePeriod": "safe",
	  "maxPhases": 20, "timeline": {"tolls": [{"kind": "marginal"}]}}`
	s, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := s.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	// Pigou edge 0 is ℓ(x) = x: the marginal toll doubles it.
	if got := sc.Instance.Latency(0).Value(1); got != 2 {
		t.Fatalf("tolled pigou latency(1) = %g, want 2", got)
	}
	want, err := engine.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	got, events, err := s.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("tolls-only run replayed %d events, want 0", len(events))
	}
	if got.FinalPotential != want.FinalPotential || got.Phases != want.Phases {
		t.Fatalf("Run diverged from engine.Run: Φ %g vs %g", got.FinalPotential, want.FinalPotential)
	}
}

// A timeline-bearing spec must fingerprint differently from its stationary
// counterpart (the cache key covers the timeline), while a stationary spec
// with an explicit empty timeline... keeps its historical fingerprint only
// when the field is omitted — JSON omitempty drops nil, not empty objects,
// and an empty object is not a meaningful document.
func TestTimelineFingerprintDistinct(t *testing.T) {
	stationary := parseSpec(t, braessScenario)
	varying, err := Parse(strings.NewReader(onsetScenario))
	if err != nil {
		t.Fatal(err)
	}
	fp1, err := stationary.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := varying.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 == fp2 {
		t.Fatal("timeline-bearing spec fingerprints like a stationary one")
	}
}
