// Package scenario declares the single-run counterpart of a sweep campaign
// cell: one declarative JSON document selecting an instance (embedded or by
// topology family), a rerouting policy, an update period, an engine, a start
// distribution and the run shape, materialised into an engine.Scenario ready
// for engine.Run. Every component resolves through the catalog registries,
// so user-registered latency kinds, topology families, policies and engines
// are selectable from scenario files without touching core packages.
package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"wardrop/internal/catalog"
	"wardrop/internal/engine"
	"wardrop/internal/flow"
	"wardrop/internal/policy"
	"wardrop/internal/spec"
	"wardrop/internal/sweep"
	"wardrop/internal/timeline"
)

// Sentinel errors.
var (
	// ErrBadScenario indicates a structurally invalid scenario specification.
	ErrBadScenario = errors.New("scenario: invalid scenario specification")
)

// badScenario wraps errors from the component layers with the package
// sentinel, leaving already-tagged errors untouched.
func badScenario(err error) error { return catalog.WrapSentinel(ErrBadScenario, err) }

// Spec is the JSON document shape of one simulation run.
type Spec struct {
	// Name labels the scenario (informational).
	Name string `json:"name,omitempty"`

	// Instance embeds a full instance document; Topology selects a
	// registered topology family instead. Exactly one must be set.
	Instance json.RawMessage `json:"instance,omitempty"`
	Topology *sweep.Topology `json:"topology,omitempty"`
	// Seed feeds seeded topology families (e.g. layered).
	Seed uint64 `json:"seed,omitempty"`

	// Policy selects the rerouting policy. Required by every engine except
	// bestresponse, which ignores it.
	Policy *sweep.PolicySpec `json:"policy,omitempty"`

	// UpdatePeriod is the bulletin-board period: a number, or "safe" for
	// the per-(instance, policy) provably safe period of Corollary 5.
	// Omitted = safe.
	UpdatePeriod *sweep.Period `json:"updatePeriod,omitempty"`

	// Engine selects the dynamics. Omitted = the default fluid engine with
	// its default RK4 integrator — note wardsim's flag path picks the exact
	// uniformization integrator instead, so a scenario reproducing a
	// flag-driven run byte for byte must say so explicitly:
	// {"kind": "fluid", "integrator": "uniformization"}.
	Engine *engine.Spec `json:"engine,omitempty"`

	// Start selects the initial-flow distribution: uniform (default),
	// worst, skewed, or any registered start.
	Start string `json:"start,omitempty"`

	// Run shape. Horizon is the simulated-time budget; MaxPhases, if
	// positive, overrides it with MaxPhases·T.
	Horizon   float64 `json:"horizon,omitempty"`
	MaxPhases int     `json:"maxPhases,omitempty"`
	// RecordEvery records a trajectory sample every k phases (0 disables).
	RecordEvery int `json:"recordEvery,omitempty"`

	// Delta and Eps parameterise the (δ,ε)-equilibrium accounting
	// (Delta <= 0 disables it); Weak selects the Definition 4 metric;
	// Streak stops the run after that many consecutive satisfied phases.
	Delta  float64 `json:"delta,omitempty"`
	Eps    float64 `json:"eps,omitempty"`
	Weak   bool    `json:"weak,omitempty"`
	Streak int     `json:"streak,omitempty"`

	// Timeline makes the run time-varying: demand schedules, edge events and
	// tolls (see package timeline). Omitted = stationary. A timeline with
	// schedules or events needs segmented execution — run such specs through
	// Spec.Run; Scenario() materialises only stationary (at most tolled)
	// specs.
	Timeline *timeline.Spec `json:"timeline,omitempty"`
}

// Parse decodes a JSON scenario specification, rejecting unknown fields, and
// validates it.
func Parse(r io.Reader) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadScenario, err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// period resolves the update-period selection (omitted = safe).
func (s *Spec) period() sweep.Period {
	if s.UpdatePeriod == nil {
		return sweep.Period{Safe: true}
	}
	return *s.UpdatePeriod
}

// buildEngine materialises the engine selection (omitted = default fluid).
func (s *Spec) buildEngine() (engine.Engine, error) {
	if s.Engine == nil {
		return engine.Fluid{}, nil
	}
	return s.Engine.Build()
}

// Validate rejects structurally invalid scenarios at parse time, before any
// instance is built: the cheap shape checks plus one resolution of every
// selected component through its catalog.
func (s *Spec) Validate() error {
	if err := s.validateShape(); err != nil {
		return err
	}
	if len(s.Instance) > 0 {
		if _, err := spec.Decode(bytes.NewReader(s.Instance)); err != nil {
			return badScenario(err)
		}
	}
	if s.Topology != nil {
		if err := s.Topology.Validate(); err != nil {
			return badScenario(err)
		}
	}
	eng, err := s.buildEngine()
	if err != nil {
		return badScenario(err)
	}
	if err := s.validatePolicyFor(eng); err != nil {
		return err
	}
	if s.Policy != nil {
		if err := s.Policy.Validate(); err != nil {
			return badScenario(err)
		}
	}
	if _, err := engine.LookupStart(s.Start); err != nil {
		return badScenario(err)
	}
	if err := s.Timeline.Validate(); err != nil {
		return badScenario(err)
	}
	return nil
}

// validateShape checks the scalar run-shape fields and selector exclusivity
// — everything that needs no catalog resolution. Scenario() repeats only
// these cheap checks; the component resolutions it performs anyway surface
// the rest.
func (s *Spec) validateShape() error {
	if len(s.Instance) == 0 && s.Topology == nil {
		return fmt.Errorf("%w: need an instance document or a topology selection", ErrBadScenario)
	}
	if len(s.Instance) > 0 && s.Topology != nil {
		return fmt.Errorf("%w: instance and topology are mutually exclusive", ErrBadScenario)
	}
	if s.period().Safe && s.Policy == nil {
		return fmt.Errorf("%w: the safe update period requires a policy (give a numeric updatePeriod)", ErrBadScenario)
	}
	if math.IsNaN(s.Horizon) || math.IsInf(s.Horizon, 0) || math.IsNaN(s.Delta) || math.IsNaN(s.Eps) {
		return fmt.Errorf("%w: horizon/delta/eps must be finite", ErrBadScenario)
	}
	if s.Horizon <= 0 && s.MaxPhases <= 0 {
		return fmt.Errorf("%w: need horizon > 0 or maxPhases > 0", ErrBadScenario)
	}
	if s.MaxPhases < 0 {
		return fmt.Errorf("%w: maxPhases %d must be >= 0", ErrBadScenario, s.MaxPhases)
	}
	if s.RecordEvery < 0 {
		return fmt.Errorf("%w: recordEvery %d must be >= 0", ErrBadScenario, s.RecordEvery)
	}
	if s.Streak < 0 {
		return fmt.Errorf("%w: streak %d must be >= 0", ErrBadScenario, s.Streak)
	}
	if s.Eps < 0 && s.Delta > 0 {
		return fmt.Errorf("%w: eps %g must be >= 0 when delta accounting is enabled", ErrBadScenario, s.Eps)
	}
	return nil
}

// validatePolicyFor rejects policy-less scenarios on engines that need one
// (every engine except best response ignores it).
func (s *Spec) validatePolicyFor(eng engine.Engine) error {
	if _, bestResponse := eng.(engine.BestResponse); s.Policy == nil && !bestResponse {
		return fmt.Errorf("%w: engine %q requires a policy", ErrBadScenario, eng.Name())
	}
	return nil
}

// Scenario materialises the specification: instance, policy, resolved
// period, initial flow, engine and run shape, ready for engine.Run. It does
// not re-run the full Validate — each component is decoded and built exactly
// once here, surfacing the same errors — only the cheap shape checks are
// repeated so hand-constructed Specs fail fast too.
//
// A spec whose timeline carries schedules or events cannot be captured by a
// single stationary engine.Scenario and is rejected here — run it through
// Spec.Run, which compiles and executes the timeline program. Tolls alone
// are fine: they transform the instance once at t = 0.
func (s *Spec) Scenario() (engine.Scenario, error) {
	if s.Timeline.NeedsProgram() {
		return engine.Scenario{}, fmt.Errorf("%w: a timeline with schedules or events needs segmented execution — use Spec.Run", ErrBadScenario)
	}
	return s.materialize()
}

// materialize is Scenario() without the needs-program guard: it builds the
// stationary engine.Scenario on the tolled instance, which is also the base
// Spec.Run compiles a time-varying program against.
func (s *Spec) materialize() (engine.Scenario, error) {
	if err := s.validateShape(); err != nil {
		return engine.Scenario{}, err
	}
	eng, err := s.buildEngine()
	if err != nil {
		return engine.Scenario{}, badScenario(err)
	}
	if err := s.validatePolicyFor(eng); err != nil {
		return engine.Scenario{}, err
	}

	var inst *flow.Instance
	if s.Topology != nil {
		inst, err = s.Topology.Build(s.Seed)
	} else {
		var doc spec.Instance
		doc, err = spec.Decode(bytes.NewReader(s.Instance))
		if err == nil {
			inst, err = doc.Build()
		}
	}
	if err != nil {
		return engine.Scenario{}, badScenario(err)
	}

	// Tolls transform the instance once at t = 0; every downstream
	// resolution — policy smoothness bounds, the safe update period, the
	// start distribution, timeline compilation — must see the tolled
	// latencies.
	inst, err = timeline.ApplyTolls(s.Timeline, inst)
	if err != nil {
		return engine.Scenario{}, badScenario(err)
	}

	var pol policy.Policy
	if s.Policy != nil {
		pol, err = s.Policy.Build(inst)
		if err != nil {
			return engine.Scenario{}, badScenario(err)
		}
	}

	period := s.period()
	T := period.T
	if period.Safe {
		T, err = policy.SafeUpdatePeriodFor(pol, inst.Beta(), inst.MaxPathLen())
		if err != nil {
			return engine.Scenario{}, badScenario(err)
		}
		if T <= 0 || math.IsInf(T, 0) || math.IsNaN(T) {
			return engine.Scenario{}, fmt.Errorf("%w: degenerate safe period %g", ErrBadScenario, T)
		}
	}

	horizon := s.Horizon
	if s.MaxPhases > 0 {
		horizon = float64(s.MaxPhases) * T
	}

	f0, err := engine.BuildStart(s.Start, inst)
	if err != nil {
		return engine.Scenario{}, badScenario(err)
	}

	return engine.Scenario{
		Engine:                   eng,
		Instance:                 inst,
		Policy:                   pol,
		UpdatePeriod:             T,
		InitialFlow:              f0,
		Horizon:                  horizon,
		Delta:                    s.Delta,
		Eps:                      s.Eps,
		Weak:                     s.Weak,
		StopAfterSatisfiedStreak: s.Streak,
		RecordEvery:              s.RecordEvery,
	}, nil
}

// Run materialises and executes the specification — the single execution
// path shared by `wardsim -scenario` and the serving layer, so their result
// documents are byte-identical by construction.
//
// A stationary spec (no timeline, or tolls only) runs exactly as
// engine.Run(ctx, s.Scenario(), opts...) and returns nil events. A
// time-varying spec compiles its timeline into a program of stationary
// segments over the resolved horizon and replays it (see timeline.Run):
// demand mass is rescaled at schedule breakpoints, edge events patch
// latencies, and each event taking effect is reported to onEvent (if
// non-nil) and collected into the returned slice. The policy is rebuilt per
// segment from the spec's policy selection, so migration probabilities stay
// well-conditioned when an event changes the instance's latency range.
func (s *Spec) Run(ctx context.Context, onEvent func(timeline.AppliedEvent), opts ...engine.RunOption) (*engine.Result, []timeline.AppliedEvent, error) {
	sc, err := s.materialize()
	if err != nil {
		return nil, nil, err
	}
	if !s.Timeline.NeedsProgram() {
		res, err := engine.Run(ctx, sc, opts...)
		return res, nil, err
	}
	prog, err := timeline.Compile(s.Timeline, sc.Instance, sc.Horizon)
	if err != nil {
		return nil, nil, badScenario(err)
	}
	var buildPolicy timeline.PolicyBuilder
	if s.Policy != nil {
		buildPolicy = func(inst *flow.Instance) (policy.Policy, error) {
			return s.Policy.Build(inst)
		}
	}
	return timeline.Run(ctx, prog, sc, buildPolicy, onEvent, opts...)
}

// Marshal encodes the specification as indented JSON.
func (s *Spec) Marshal() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
