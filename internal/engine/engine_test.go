package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"wardrop/internal/dynamics"
	"wardrop/internal/flow"
	"wardrop/internal/policy"
	"wardrop/internal/topo"
)

func mustPigou(t testing.TB) *flow.Instance {
	t.Helper()
	inst, err := topo.Pigou()
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func mustReplicator(t testing.TB, inst *flow.Instance) policy.Policy {
	t.Helper()
	pol, err := policy.Replicator(inst.LMax())
	if err != nil {
		t.Fatal(err)
	}
	return pol
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Scenario{}); !errors.Is(err, ErrBadScenario) {
		t.Fatalf("nil instance accepted: %v", err)
	}
	inst := mustPigou(t)
	// Engine-level validation still applies: no policy for the fluid engine.
	if _, err := Run(context.Background(), Scenario{Instance: inst, UpdatePeriod: 1, Horizon: 1}); !errors.Is(err, dynamics.ErrBadConfig) {
		t.Fatalf("policy-less fluid scenario accepted: %v", err)
	}
}

func TestDefaultEngineIsFluid(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst)
	sc := Scenario{Instance: inst, Policy: pol, UpdatePeriod: 0.25, Horizon: 2}
	got, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := dynamics.Run(context.Background(), inst, dynamics.Config{
		Policy: pol, UpdatePeriod: 0.25, Horizon: 2,
	}, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("default engine result differs from dynamics.Run:\n got %+v\nwant %+v", got, want)
	}
}

func TestEngineNames(t *testing.T) {
	cases := []struct {
		eng  Engine
		want string
	}{
		{Fluid{}, "fluid"},
		{Fluid{Fresh: true}, "fresh"},
		{BestResponse{}, "bestresponse"},
		{Agents{N: 10}, "agents"},
	}
	for _, c := range cases {
		if got := c.eng.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

func TestSpecBuildRoundTrip(t *testing.T) {
	cases := []struct {
		spec Spec
		want Engine
	}{
		{Spec{}, Fluid{}},
		{Spec{Kind: "fluid", Integrator: "uniformization"}, Fluid{Integrator: dynamics.Uniformization}},
		{Spec{Kind: "fresh", Integrator: "euler", Step: 0.5}, Fluid{Fresh: true, Integrator: dynamics.Euler, Step: 0.5}},
		{Spec{Kind: "bestresponse"}, BestResponse{}},
		{Spec{Kind: "agents", N: 7, Seed: 3, Workers: 2}, Agents{N: 7, Seed: 3, Workers: 2}},
	}
	for _, c := range cases {
		got, err := c.spec.Build()
		if err != nil {
			t.Fatalf("Build(%+v): %v", c.spec, err)
		}
		if got != c.want {
			t.Errorf("Build(%+v) = %+v, want %+v", c.spec, got, c.want)
		}
	}
	for _, bad := range []Spec{
		{Kind: "warp"},
		{Kind: "agents"},
		{Kind: "fluid", Integrator: "simplectic"},
	} {
		if _, err := bad.Build(); !errors.Is(err, ErrBadEngine) {
			t.Errorf("Build(%+v) err = %v, want ErrBadEngine", bad, err)
		}
	}
	if _, err := New("agents"); !errors.Is(err, ErrBadEngine) {
		t.Errorf("New(agents) err = %v, want ErrBadEngine", err)
	}
	if eng, err := New("bestresponse"); err != nil || eng != (BestResponse{}) {
		t.Errorf("New(bestresponse) = %v, %v", eng, err)
	}
}

func TestAllEnginesRunAndObserve(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst)
	for _, eng := range []Engine{
		Fluid{},
		Fluid{Fresh: true, Step: 1.0 / 32},
		BestResponse{},
		Agents{N: 50, Seed: 9, Workers: 1},
		Agents{N: 50, Seed: 9, EventDriven: true},
	} {
		phases := 0
		sc := Scenario{
			Engine: eng, Instance: inst, Policy: pol,
			UpdatePeriod: 0.25, Horizon: 2, RecordEvery: 1,
		}
		res, err := Run(context.Background(), sc, WithObserver(dynamics.ObserverFunc(func(dynamics.PhaseInfo) bool {
			phases++
			return false
		})))
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if phases == 0 {
			t.Errorf("%s: observer saw no phases", eng.Name())
		}
		if len(res.Trajectory) == 0 {
			t.Errorf("%s: no trajectory recorded", eng.Name())
		}
		if err := inst.Feasible(res.Final, 1e-6); err != nil {
			t.Errorf("%s: infeasible final flow: %v", eng.Name(), err)
		}
	}
}

func TestObserverStopsRun(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst)
	sc := Scenario{Instance: inst, Policy: pol, UpdatePeriod: 0.25, Horizon: 100}
	res, err := Run(context.Background(), sc, WithObserver(dynamics.ObserverFunc(func(info dynamics.PhaseInfo) bool {
		return info.Index >= 3
	})))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || res.Phases != 3 {
		t.Fatalf("stopped=%v phases=%d, want stop after 3 phases", res.Stopped, res.Phases)
	}
}

func TestCancellationReturnsPartialResult(t *testing.T) {
	inst := mustPigou(t)
	pol := mustReplicator(t, inst)
	for _, eng := range []Engine{Fluid{}, Agents{N: 40, Seed: 1, Workers: 1}} {
		ctx, cancel := context.WithCancel(context.Background())
		sc := Scenario{Engine: eng, Instance: inst, Policy: pol, UpdatePeriod: 0.25, Horizon: 1000}
		res, err := Run(ctx, sc, WithObserver(dynamics.ObserverFunc(func(info dynamics.PhaseInfo) bool {
			if info.Index == 4 {
				cancel()
			}
			return false
		})))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", eng.Name(), err)
		}
		if res == nil || res.Phases != 5 {
			t.Fatalf("%s: partial result %+v, want 5 completed phases", eng.Name(), res)
		}
		if err := inst.Feasible(res.Final, 1e-6); err != nil {
			t.Errorf("%s: infeasible partial final: %v", eng.Name(), err)
		}
		cancel()
	}
}

func TestWithObserverEmptyKeepsNil(t *testing.T) {
	var o Options
	WithObserver()(&o)
	if o.Observer != nil {
		t.Fatalf("empty WithObserver set Observer = %#v, want nil", o.Observer)
	}
	WithObserver(nil, nil)(&o)
	if o.Observer != nil {
		t.Fatalf("all-nil WithObserver set Observer = %#v, want nil", o.Observer)
	}
}
