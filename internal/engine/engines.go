package engine

import (
	"context"
	"fmt"

	"wardrop/internal/agents"
	"wardrop/internal/dynamics"
)

// Fluid integrates the infinite-population fluid-limit ODE: the
// stale-information dynamics (Eq. 3) under the bulletin-board model by
// default, or the up-to-date-information dynamics (Eq. 1) when Fresh is set.
type Fluid struct {
	// Fresh selects the fresh-information dynamics (Eq. 1); the scenario's
	// UpdatePeriod is then ignored.
	Fresh bool
	// Integrator selects the within-phase scheme (0 = the dynamics default,
	// RK4).
	Integrator dynamics.Integrator
	// Step is the integrator step (0 = the dynamics default).
	Step float64
}

// Name returns "fluid" or "fresh".
func (e Fluid) Name() string {
	if e.Fresh {
		return "fresh"
	}
	return "fluid"
}

// Run integrates the scenario's fluid dynamics.
func (e Fluid) Run(ctx context.Context, sc Scenario, opts Options) (*Result, error) {
	cfg := dynamics.Config{
		Policy:                   sc.Policy,
		UpdatePeriod:             sc.UpdatePeriod,
		Step:                     e.Step,
		Horizon:                  sc.Horizon,
		Integrator:               e.Integrator,
		Delta:                    sc.Delta,
		Eps:                      sc.Eps,
		Weak:                     sc.Weak,
		StopAfterSatisfiedStreak: sc.StopAfterSatisfiedStreak,
		RecordEvery:              sc.RecordEvery,
		Observer:                 opts.Observer,
	}
	if e.Fresh {
		return dynamics.RunFresh(ctx, sc.Instance, cfg, sc.initialFlow())
	}
	return dynamics.Run(ctx, sc.Instance, cfg, sc.initialFlow())
}

// BestResponse integrates the best-response differential inclusion under
// stale information (Eq. 4) with exact per-phase relaxation. The scenario's
// Policy is ignored — every activated agent adopts the board's shortest
// path.
type BestResponse struct{}

// Name returns "bestresponse".
func (BestResponse) Name() string { return "bestresponse" }

// Run integrates the scenario's best-response dynamics.
func (BestResponse) Run(ctx context.Context, sc Scenario, opts Options) (*Result, error) {
	cfg := dynamics.BestResponseConfig{
		UpdatePeriod:             sc.UpdatePeriod,
		Horizon:                  sc.Horizon,
		RecordEvery:              sc.RecordEvery,
		Delta:                    sc.Delta,
		Eps:                      sc.Eps,
		Weak:                     sc.Weak,
		StopAfterSatisfiedStreak: sc.StopAfterSatisfiedStreak,
		Observer:                 opts.Observer,
	}
	return dynamics.RunBestResponse(ctx, sc.Instance, cfg, sc.initialFlow())
}

// Agents runs the finite-N stochastic bulletin-board simulation — the
// engine whose N → ∞ limit is Fluid.
type Agents struct {
	// N is the population size (required, >= 1).
	N int
	// Seed makes runs reproducible for a fixed (Seed, Workers) pair.
	Seed uint64
	// Workers is the number of simulation goroutines (0 = GOMAXPROCS).
	Workers int
	// EventDriven selects the exact global event clock instead of per-phase
	// Poisson batching (single-threaded reference engine).
	EventDriven bool
}

// Name returns "agents".
func (Agents) Name() string { return "agents" }

// Run simulates the scenario's finite-N stochastic counterpart.
func (e Agents) Run(ctx context.Context, sc Scenario, opts Options) (*Result, error) {
	sim, err := agents.New(sc.Instance, agents.Config{
		N:                        e.N,
		Policy:                   sc.Policy,
		UpdatePeriod:             sc.UpdatePeriod,
		Horizon:                  sc.Horizon,
		Seed:                     e.Seed,
		Workers:                  e.Workers,
		RecordEvery:              sc.RecordEvery,
		Observer:                 opts.Observer,
		InitialFlow:              sc.InitialFlow,
		Delta:                    sc.Delta,
		Eps:                      sc.Eps,
		Weak:                     sc.Weak,
		StopAfterSatisfiedStreak: sc.StopAfterSatisfiedStreak,
	})
	if err != nil {
		return nil, err
	}
	if e.EventDriven {
		return sim.RunEventDrivenContext(ctx)
	}
	return sim.RunContext(ctx)
}

// Spec is the JSON document shape for selecting an engine by name — the
// form spec/JSON layers (exposed at the root as wardrop.EngineSpec) use to
// construct engines from configuration instead of Go values.
type Spec struct {
	// Kind names the engine: fluid, fresh, bestresponse, agents.
	Kind string `json:"kind"`
	// N is the population size (kind=agents).
	N int `json:"n,omitempty"`
	// Seed seeds the stochastic engine (kind=agents).
	Seed uint64 `json:"seed,omitempty"`
	// Workers is the goroutine count (kind=agents; 0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// EventDriven selects the exact event clock (kind=agents).
	EventDriven bool `json:"eventDriven,omitempty"`
	// Integrator names the within-phase scheme (kind=fluid/fresh):
	// euler, rk4, uniformization ("" = default).
	Integrator string `json:"integrator,omitempty"`
	// Step is the integrator step (kind=fluid/fresh; 0 = default).
	Step float64 `json:"step,omitempty"`
}

// Build materialises the engine.
func (s Spec) Build() (Engine, error) {
	switch s.Kind {
	case "", "fluid", "fresh":
		integ, err := ParseIntegrator(s.Integrator)
		if err != nil {
			return nil, err
		}
		return Fluid{Fresh: s.Kind == "fresh", Integrator: integ, Step: s.Step}, nil
	case "bestresponse", "best-response":
		return BestResponse{}, nil
	case "agents":
		if s.N < 1 {
			return nil, fmt.Errorf("%w: agents engine requires n >= 1, got %d", ErrBadEngine, s.N)
		}
		return Agents{N: s.N, Seed: s.Seed, Workers: s.Workers, EventDriven: s.EventDriven}, nil
	default:
		return nil, fmt.Errorf("%w: unknown engine kind %q", ErrBadEngine, s.Kind)
	}
}

// New returns a default-configured engine by name; the agents engine cannot
// be built this way (it needs a population — use Spec).
func New(name string) (Engine, error) {
	if name == "agents" {
		return nil, fmt.Errorf("%w: agents engine needs a population; use Spec{Kind: \"agents\", N: ...}", ErrBadEngine)
	}
	return Spec{Kind: name}.Build()
}

// ParseIntegrator resolves an integrator name ("" = the dynamics default).
func ParseIntegrator(name string) (dynamics.Integrator, error) {
	switch name {
	case "":
		return 0, nil
	case "euler":
		return dynamics.Euler, nil
	case "rk4":
		return dynamics.RK4, nil
	case "uniformization":
		return dynamics.Uniformization, nil
	default:
		return 0, fmt.Errorf("%w: unknown integrator %q", ErrBadEngine, name)
	}
}
