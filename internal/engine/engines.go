package engine

import (
	"context"
	"encoding/json"
	"fmt"

	"wardrop/internal/agents"
	"wardrop/internal/catalog"
	"wardrop/internal/dynamics"
	"wardrop/internal/meanfield"
)

// Fluid integrates the infinite-population fluid-limit ODE: the
// stale-information dynamics (Eq. 3) under the bulletin-board model by
// default, or the up-to-date-information dynamics (Eq. 1) when Fresh is set.
type Fluid struct {
	// Fresh selects the fresh-information dynamics (Eq. 1); the scenario's
	// UpdatePeriod is then ignored.
	Fresh bool
	// Integrator selects the within-phase scheme (0 = the dynamics default,
	// RK4).
	Integrator dynamics.Integrator
	// Step is the integrator step (0 = the dynamics default).
	Step float64
}

// Name returns "fluid" or "fresh".
func (e Fluid) Name() string {
	if e.Fresh {
		return "fresh"
	}
	return "fluid"
}

// Run integrates the scenario's fluid dynamics.
func (e Fluid) Run(ctx context.Context, sc Scenario, opts Options) (*Result, error) {
	cfg := dynamics.Config{
		Policy:                   sc.Policy,
		UpdatePeriod:             sc.UpdatePeriod,
		Step:                     e.Step,
		Horizon:                  sc.Horizon,
		Integrator:               e.Integrator,
		Delta:                    sc.Delta,
		Eps:                      sc.Eps,
		Weak:                     sc.Weak,
		StopAfterSatisfiedStreak: sc.StopAfterSatisfiedStreak,
		RecordEvery:              sc.RecordEvery,
		Observer:                 opts.Observer,
		Workspace:                opts.Workspace,
	}
	if e.Fresh {
		return dynamics.RunFresh(ctx, sc.Instance, cfg, sc.initialFlow())
	}
	return dynamics.Run(ctx, sc.Instance, cfg, sc.initialFlow())
}

// BestResponse integrates the best-response differential inclusion under
// stale information (Eq. 4) with exact per-phase relaxation. The scenario's
// Policy is ignored — every activated agent adopts the board's shortest
// path.
type BestResponse struct{}

// Name returns "bestresponse".
func (BestResponse) Name() string { return "bestresponse" }

// Run integrates the scenario's best-response dynamics.
func (BestResponse) Run(ctx context.Context, sc Scenario, opts Options) (*Result, error) {
	cfg := dynamics.BestResponseConfig{
		UpdatePeriod:             sc.UpdatePeriod,
		Horizon:                  sc.Horizon,
		RecordEvery:              sc.RecordEvery,
		Delta:                    sc.Delta,
		Eps:                      sc.Eps,
		Weak:                     sc.Weak,
		StopAfterSatisfiedStreak: sc.StopAfterSatisfiedStreak,
		Observer:                 opts.Observer,
		Workspace:                opts.Workspace,
	}
	return dynamics.RunBestResponse(ctx, sc.Instance, cfg, sc.initialFlow())
}

// MaxAgentPopulation is the largest population the per-agent engine accepts:
// it materialises every agent (8 bytes each, plus per-worker count arrays),
// so beyond this the engine is the wrong tool — the count engine (Count,
// kind "count") simulates the identical stochastic process at O(paths) per
// phase for any population.
const MaxAgentPopulation = 1 << 24

// Agents runs the finite-N stochastic bulletin-board simulation — the
// engine whose N → ∞ limit is Fluid.
type Agents struct {
	// N is the population size (required, >= 1 and <= MaxAgentPopulation —
	// use Count for larger populations).
	N int
	// Seed makes runs reproducible for a fixed (Seed, Workers) pair.
	Seed uint64
	// Workers is the number of simulation goroutines (0 = GOMAXPROCS).
	Workers int
	// EventDriven selects the exact global event clock instead of per-phase
	// Poisson batching (single-threaded reference engine).
	EventDriven bool
}

// Name returns "agents".
func (Agents) Name() string { return "agents" }

// Run simulates the scenario's finite-N stochastic counterpart.
func (e Agents) Run(ctx context.Context, sc Scenario, opts Options) (*Result, error) {
	sim, err := agents.New(sc.Instance, agents.Config{
		N:                        e.N,
		Policy:                   sc.Policy,
		UpdatePeriod:             sc.UpdatePeriod,
		Horizon:                  sc.Horizon,
		Seed:                     e.Seed,
		Workers:                  e.Workers,
		RecordEvery:              sc.RecordEvery,
		Observer:                 opts.Observer,
		InitialFlow:              sc.InitialFlow,
		Delta:                    sc.Delta,
		Eps:                      sc.Eps,
		Weak:                     sc.Weak,
		StopAfterSatisfiedStreak: sc.StopAfterSatisfiedStreak,
		Workspace:                opts.Workspace,
	})
	if err != nil {
		return nil, err
	}
	if e.EventDriven {
		return sim.RunEventDrivenContext(ctx)
	}
	return sim.RunContext(ctx)
}

// Count runs the mean-field count engine: the same finite-N bulletin-board
// process as Agents, represented as integer counts per (commodity, path) and
// advanced by binomial/multinomial splitting, so a phase costs O(paths²)
// independent of the population — millions of agents cost the same as
// thousands. Distributionally identical to Agents (not an approximation);
// results are reproducible from the seed via the shared splitmix64
// discipline.
type Count struct {
	// N is the population size (required, >= 1; int64 — populations up to
	// 2^53 stay exactly representable).
	N int64
	// Seed makes runs reproducible.
	Seed uint64
}

// Name returns "count".
func (Count) Name() string { return "count" }

// Run simulates the scenario's population as per-path counts.
func (e Count) Run(ctx context.Context, sc Scenario, opts Options) (*Result, error) {
	sim, err := meanfield.New(sc.Instance, meanfield.Config{
		N:                        e.N,
		Policy:                   sc.Policy,
		UpdatePeriod:             sc.UpdatePeriod,
		Horizon:                  sc.Horizon,
		Seed:                     e.Seed,
		RecordEvery:              sc.RecordEvery,
		Observer:                 opts.Observer,
		InitialFlow:              sc.InitialFlow,
		Delta:                    sc.Delta,
		Eps:                      sc.Eps,
		Weak:                     sc.Weak,
		StopAfterSatisfiedStreak: sc.StopAfterSatisfiedStreak,
		Workspace:                opts.Workspace,
	})
	if err != nil {
		return nil, err
	}
	return sim.RunContext(ctx)
}

// Spec is the JSON document shape for selecting an engine by name — the
// form spec/JSON layers (exposed at the root as wardrop.EngineSpec) use to
// construct engines from configuration instead of Go values. Construction
// dispatches through the engine Catalog, so user-registered engines are
// selectable too; their parameters travel in Params.
type Spec struct {
	// Kind names the engine: fluid (default), fresh, bestresponse, agents,
	// count, or any registered engine.
	Kind string `json:"kind"`
	// N is the population size (kind=agents or count; int64 so count
	// populations beyond 2^31 survive the document round-trip).
	N int64 `json:"n,omitempty"`
	// Seed seeds the stochastic engines (kind=agents or count).
	Seed uint64 `json:"seed,omitempty"`
	// Workers is the goroutine count (kind=agents; 0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// EventDriven selects the exact event clock (kind=agents).
	EventDriven bool `json:"eventDriven,omitempty"`
	// Integrator names the within-phase scheme (kind=fluid/fresh):
	// euler, rk4, uniformization ("" = default).
	Integrator string `json:"integrator,omitempty"`
	// Step is the integrator step (kind=fluid/fresh; 0 = default).
	Step float64 `json:"step,omitempty"`
	// Params carries a user-registered engine's parameters (decode with
	// catalog.DecodeParams). Builtin kinds read the flat fields above and
	// also honour overrides placed here (a field present in both spellings
	// resolves to the params value).
	Params json.RawMessage `json:"params,omitempty"`
}

// Build materialises the engine through the Catalog.
func (s Spec) Build() (Engine, error) {
	kind := s.Kind
	if kind == "" {
		kind = "fluid"
	}
	args, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEngine, err)
	}
	eng, err := Catalog.Build(kind, args)
	if err != nil {
		return nil, badEngine(err)
	}
	return eng, nil
}

// badEngine wraps errors from the catalog layer with the package sentinel,
// leaving already-tagged errors untouched.
func badEngine(err error) error { return catalog.WrapSentinel(ErrBadEngine, err) }

// New returns a default-configured engine by name; the stochastic engines
// cannot be built this way (they need a population — use Spec).
func New(name string) (Engine, error) {
	if name == "agents" || name == "count" {
		return nil, fmt.Errorf("%w: %s engine needs a population; use Spec{Kind: %q, N: ...}", ErrBadEngine, name, name)
	}
	return Spec{Kind: name}.Build()
}

// ParseIntegrator resolves an integrator name through the Integrators
// registry ("" = the dynamics default).
func ParseIntegrator(name string) (dynamics.Integrator, error) {
	if name == "" {
		return 0, nil
	}
	integ, err := Integrators.Build(name, nil)
	if err != nil {
		return 0, badEngine(err)
	}
	return integ, nil
}
