// Package engine is the unified front door to the library's simulation
// dynamics. A Scenario declares *what* to simulate — instance, rerouting
// policy, bulletin-board period, initial flow and run shape — while an
// Engine declares *how*: the fluid-limit ODE (stale or fresh information),
// the best-response differential inclusion, or the finite-N stochastic
// agent system. Run(ctx, scenario, opts...) dispatches the scenario to its
// engine with composable observers and context cancellation, so callers
// (sweep campaigns, experiments, CLIs) never special-case the dynamics
// family: a new engine, observer or stop rule is a plug-in, not a fourth
// entry point.
package engine

import (
	"context"
	"errors"
	"fmt"

	"wardrop/internal/dynamics"
	"wardrop/internal/flow"
	"wardrop/internal/policy"
)

// Sentinel errors.
var (
	// ErrBadScenario indicates an invalid scenario.
	ErrBadScenario = errors.New("engine: invalid scenario")
	// ErrBadEngine indicates an unknown or misconfigured engine.
	ErrBadEngine = errors.New("engine: invalid engine")
)

// Result is the unified simulation outcome shared by every engine.
type Result = dynamics.Result

// Scenario declares one simulation: the instance, the rerouting policy, the
// information model (the bulletin-board period T; the information-model
// refinements — fresh recomputation, finite-N sampling — live on the
// engine), the initial flow and the run shape.
type Scenario struct {
	// Engine selects the dynamics; nil runs the default Fluid engine.
	Engine Engine
	// Instance is the Wardrop instance to route on (required).
	Instance *flow.Instance
	// Policy is the two-step rerouting policy. Required by the Fluid and
	// Agents engines; ignored by BestResponse.
	Policy policy.Policy
	// UpdatePeriod is the bulletin-board period T (> 0 for every stale-
	// information engine; ignored when Fluid.Fresh is set).
	UpdatePeriod float64
	// InitialFlow is the starting flow; nil starts from the instance's
	// uniform flow.
	InitialFlow flow.Vector
	// Horizon is the simulated time budget (required, > 0).
	Horizon float64

	// Delta and Eps parameterise the (δ,ε)-equilibrium round accounting of
	// Theorems 6 and 7 (Delta <= 0 disables it); Weak selects the
	// Definition 4 metric.
	Delta float64
	Eps   float64
	Weak  bool
	// StopAfterSatisfiedStreak stops the run once this many consecutive
	// phases started at the configured approximate equilibrium (0 disables).
	StopAfterSatisfiedStreak int
	// RecordEvery records a trajectory sample every k phases (0 disables).
	RecordEvery int
}

// engineOrDefault resolves the scenario's engine.
func (sc Scenario) engineOrDefault() Engine {
	if sc.Engine == nil {
		return Fluid{}
	}
	return sc.Engine
}

// initialFlow resolves the scenario's starting flow.
func (sc Scenario) initialFlow() flow.Vector {
	if sc.InitialFlow != nil {
		return sc.InitialFlow
	}
	return sc.Instance.UniformFlow()
}

// validate rejects scenarios no engine can run; engine-specific shape checks
// (period, policy, population) stay with the engines' own validation.
func (sc Scenario) validate() error {
	if sc.Instance == nil {
		return fmt.Errorf("%w: nil instance", ErrBadScenario)
	}
	return nil
}

// Options is the resolved form of a RunOption list.
type Options struct {
	// Observer receives every phase start (nil when no observer was given).
	Observer dynamics.Observer
	// Workspace supplies the run's scratch buffers (nil: the engine
	// allocates privately). See flow.Workspace for the reuse contract.
	Workspace *flow.Workspace
}

// RunOption configures one Run call.
type RunOption func(*Options)

// WithObserver attaches observers to the run; multiple options and multiple
// observers compose (fan-out, every observer sees every phase, the run
// stops when any of them asks to).
func WithObserver(obs ...dynamics.Observer) RunOption {
	return func(o *Options) {
		flat := make([]dynamics.Observer, 0, 1+len(obs))
		if o.Observer != nil {
			flat = append(flat, o.Observer)
		}
		for _, ob := range obs {
			if ob != nil {
				flat = append(flat, ob)
			}
		}
		switch len(flat) {
		case 0:
			// Keep the nil-means-absent invariant on Options.Observer.
		case 1:
			o.Observer = flat[0]
		default:
			o.Observer = dynamics.MultiObserver(flat...)
		}
	}
}

// WithWorkspace runs the scenario on the given workspace, so repeated runs
// (a sweep worker's tasks, a parameter scan) reuse one set of scratch
// buffers instead of reallocating per run. The workspace is reset by the
// engine at run entry; it must not be shared by concurrent runs.
func WithWorkspace(ws *flow.Workspace) RunOption {
	return func(o *Options) { o.Workspace = ws }
}

// Engine executes a scenario under one dynamics family. Engines are small
// comparable values so campaign specs can carry them; Name is the stable
// identifier the spec layer round-trips through JSON.
type Engine interface {
	// Name is the engine's stable registry name.
	Name() string
	// Run executes the scenario. On context cancellation engines return the
	// partial result accumulated so far together with ctx.Err().
	Run(ctx context.Context, sc Scenario, opts Options) (*Result, error)
}

// IsCancellation reports whether err is context cancellation (Canceled or
// DeadlineExceeded) — the errors engines return together with a partial
// result. It is the one definition of the interruption taxonomy shared by
// the sweep engine and the CLIs.
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Run executes the scenario on its engine. It is the single entry point the
// sweep engine, the experiments harness, the CLIs and the examples dispatch
// through; the legacy Simulate*/NewAgentSim functions remain as deprecated
// adapters around the same internals.
func Run(ctx context.Context, sc Scenario, opts ...RunOption) (*Result, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return sc.engineOrDefault().Run(ctx, sc, o)
}
