package engine

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"wardrop/internal/topo"
)

func TestEngineCatalogAlias(t *testing.T) {
	eng, err := (Spec{Kind: "best-response"}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := eng.(BestResponse); !ok {
		t.Errorf("best-response built %T", eng)
	}
	// Aliases stay out of the deterministic listing.
	if names := Catalog.Names(); !reflect.DeepEqual(names, []string{"agents", "bestresponse", "fluid", "fresh"}) {
		t.Errorf("engine names = %v", names)
	}
}

func TestUnknownEngineAndIntegrator(t *testing.T) {
	if _, err := (Spec{Kind: "warpdrive"}).Build(); !errors.Is(err, ErrBadEngine) {
		t.Errorf("unknown engine err = %v", err)
	}
	if _, err := ParseIntegrator("simpson"); !errors.Is(err, ErrBadEngine) {
		t.Errorf("unknown integrator err = %v", err)
	}
}

func TestStartCatalog(t *testing.T) {
	inst, err := topo.LinearParallelLinks(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "uniform", "worst", "skewed"} {
		f, err := BuildStart(name, inst)
		if err != nil {
			t.Fatalf("start %q: %v", name, err)
		}
		sum := 0.0
		for _, v := range f {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("start %q: mass %g, want 1", name, sum)
		}
	}
	// worst concentrates everything on the highest free-flow-latency path;
	// skewed leaves every path strictly positive.
	worst, _ := BuildStart("worst", inst)
	nonzero := 0
	for _, v := range worst {
		if v > 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Errorf("worst start spread over %d paths", nonzero)
	}
	skewed, _ := BuildStart("skewed", inst)
	for i, v := range skewed {
		if v <= 0 {
			t.Errorf("skewed start left path %d at %g", i, v)
		}
	}
	if _, err := BuildStart("sideways", inst); err == nil {
		t.Error("unknown start accepted")
	}
}
