package engine

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"wardrop/internal/topo"
)

func TestEngineCatalogAlias(t *testing.T) {
	eng, err := (Spec{Kind: "best-response"}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := eng.(BestResponse); !ok {
		t.Errorf("best-response built %T", eng)
	}
	// Aliases stay out of the deterministic listing.
	if names := Catalog.Names(); !reflect.DeepEqual(names, []string{"agents", "bestresponse", "count", "fluid", "fresh"}) {
		t.Errorf("engine names = %v", names)
	}
}

func TestCountEngineSpec(t *testing.T) {
	eng, err := (Spec{Kind: "count", N: 5_000_000, Seed: 9}).Build()
	if err != nil {
		t.Fatal(err)
	}
	c, ok := eng.(Count)
	if !ok {
		t.Fatalf("count built %T", eng)
	}
	if c.N != 5_000_000 || c.Seed != 9 {
		t.Errorf("count engine = %+v", c)
	}
	if _, err := (Spec{Kind: "count"}).Build(); !errors.Is(err, ErrBadEngine) {
		t.Errorf("count without population err = %v", err)
	}
	if _, err := (Spec{Kind: "count", N: 1 << 60}).Build(); !errors.Is(err, ErrBadEngine) {
		t.Errorf("count beyond 2^53 err = %v", err)
	}
	if _, err := New("count"); !errors.Is(err, ErrBadEngine) {
		t.Errorf("New(count) err = %v", err)
	}
}

// The per-agent engine rejects populations it cannot hold, and the error
// routes the caller to the count engine.
func TestAgentsPopulationCap(t *testing.T) {
	_, err := (Spec{Kind: "agents", N: MaxAgentPopulation + 1}).Build()
	if !errors.Is(err, ErrBadEngine) {
		t.Fatalf("over-cap population err = %v", err)
	}
	if !strings.Contains(err.Error(), "count") {
		t.Errorf("over-cap error %q does not hint at the count engine", err)
	}
	if _, err := (Spec{Kind: "agents", N: MaxAgentPopulation}).Build(); err != nil {
		t.Errorf("at-cap population rejected: %v", err)
	}
}

func TestUnknownEngineAndIntegrator(t *testing.T) {
	if _, err := (Spec{Kind: "warpdrive"}).Build(); !errors.Is(err, ErrBadEngine) {
		t.Errorf("unknown engine err = %v", err)
	}
	if _, err := ParseIntegrator("simpson"); !errors.Is(err, ErrBadEngine) {
		t.Errorf("unknown integrator err = %v", err)
	}
}

func TestStartCatalog(t *testing.T) {
	inst, err := topo.LinearParallelLinks(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "uniform", "worst", "skewed"} {
		f, err := BuildStart(name, inst)
		if err != nil {
			t.Fatalf("start %q: %v", name, err)
		}
		sum := 0.0
		for _, v := range f {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("start %q: mass %g, want 1", name, sum)
		}
	}
	// worst concentrates everything on the highest free-flow-latency path;
	// skewed leaves every path strictly positive.
	worst, _ := BuildStart("worst", inst)
	nonzero := 0
	for _, v := range worst {
		if v > 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Errorf("worst start spread over %d paths", nonzero)
	}
	skewed, _ := BuildStart("skewed", inst)
	for i, v := range skewed {
		if v <= 0 {
			t.Errorf("skewed start left path %d at %g", i, v)
		}
	}
	if _, err := BuildStart("sideways", inst); err == nil {
		t.Error("unknown start accepted")
	}
}
