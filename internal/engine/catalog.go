package engine

import (
	"encoding/json"
	"fmt"
	"math"

	"wardrop/internal/catalog"
	"wardrop/internal/dynamics"
	"wardrop/internal/flow"
	"wardrop/internal/meanfield"
)

// Catalog is the registry of engines; Integrators the registry of within-
// phase integration schemes; Starts the registry of initial-flow
// distributions. Spec.Build, the sweep campaign layer and the scenario layer
// dispatch through them instead of switching on names.
var (
	Catalog     = newEngines()
	Integrators = newIntegrators()
	Starts      = newStarts()
)

// engineArgs mirrors the flat JSON fields of an engine document (the same
// fields Spec carries for programmatic construction).
type engineArgs struct {
	N           int64   `json:"n"`
	Seed        uint64  `json:"seed"`
	Workers     int     `json:"workers"`
	EventDriven bool    `json:"eventDriven"`
	Integrator  string  `json:"integrator"`
	Step        float64 `json:"step"`
}

// fluidBuilder builds the Fluid engine in its stale- or fresh-information
// variant.
func fluidBuilder(fresh bool) func(json.RawMessage) (Engine, error) {
	return func(raw json.RawMessage) (Engine, error) {
		var a engineArgs
		if err := catalog.DecodeArgs(raw, &a); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadEngine, err)
		}
		integ, err := ParseIntegrator(a.Integrator)
		if err != nil {
			return nil, err
		}
		return Fluid{Fresh: fresh, Integrator: integ, Step: a.Step}, nil
	}
}

func newEngines() *catalog.Registry[Engine] {
	r := catalog.NewRegistry[Engine]("engine")
	r.MustRegister(catalog.Entry[Engine]{
		Name: "fluid",
		Doc:  "infinite-population fluid-limit ODE under stale information (Eq. 3; the default)",
		Params: []catalog.Param{
			{Name: "integrator", Type: "string", Doc: "within-phase scheme: euler, rk4, uniformization (default rk4)"},
			{Name: "step", Type: "float", Doc: "integrator step (0 = default)"},
		},
		Build: fluidBuilder(false),
	})
	r.MustRegister(catalog.Entry[Engine]{
		Name: "fresh",
		Doc:  "fluid-limit ODE under up-to-date information (Eq. 1; the update period is ignored)",
		Params: []catalog.Param{
			{Name: "integrator", Type: "string", Doc: "within-phase scheme: euler, rk4, uniformization (default rk4)"},
			{Name: "step", Type: "float", Doc: "integrator step (0 = default)"},
		},
		Build: fluidBuilder(true),
	})
	r.MustRegister(catalog.Entry[Engine]{
		Name: "bestresponse",
		Doc:  "best-response differential inclusion under stale information (Eq. 4)",
		Build: func(json.RawMessage) (Engine, error) {
			return BestResponse{}, nil
		},
	})
	r.MustRegister(catalog.Entry[Engine]{
		Name: "agents",
		Doc:  "finite-N stochastic bulletin-board simulation",
		Params: []catalog.Param{
			{Name: "n", Type: "int", Doc: "population size (>= 1)"},
			{Name: "seed", Type: "uint", Doc: "reproducibility seed"},
			{Name: "workers", Type: "int", Doc: "simulation goroutines (0 = GOMAXPROCS)"},
			{Name: "eventDriven", Type: "bool", Doc: "exact global event clock instead of per-phase batching"},
		},
		Build: func(raw json.RawMessage) (Engine, error) {
			var a engineArgs
			if err := catalog.DecodeArgs(raw, &a); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadEngine, err)
			}
			if a.N < 1 {
				return nil, fmt.Errorf("%w: agents engine requires n >= 1, got %d", ErrBadEngine, a.N)
			}
			if a.N > MaxAgentPopulation {
				return nil, fmt.Errorf("%w: agents engine holds at most %d individually simulated agents (n = %d); use the count engine (kind \"count\") — it runs the identical stochastic process at any population", ErrBadEngine, int64(MaxAgentPopulation), a.N)
			}
			return Agents{N: int(a.N), Seed: a.Seed, Workers: a.Workers, EventDriven: a.EventDriven}, nil
		},
	})
	r.MustRegister(catalog.Entry[Engine]{
		Name: "count",
		Doc:  "mean-field count engine: the agents process as per-path counts, O(paths) per phase at any population",
		Params: []catalog.Param{
			{Name: "n", Type: "int", Doc: "population size (>= 1; millions are fine)"},
			{Name: "seed", Type: "uint", Doc: "reproducibility seed"},
		},
		Build: func(raw json.RawMessage) (Engine, error) {
			var a engineArgs
			if err := catalog.DecodeArgs(raw, &a); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadEngine, err)
			}
			if a.N < 1 {
				return nil, fmt.Errorf("%w: count engine requires n >= 1, got %d", ErrBadEngine, a.N)
			}
			if a.N > meanfield.MaxPopulation {
				return nil, fmt.Errorf("%w: count engine requires n <= %d (exact float64 counts), got %d", ErrBadEngine, meanfield.MaxPopulation, a.N)
			}
			return Count{N: a.N, Seed: a.Seed}, nil
		},
	})
	if err := r.Alias("best-response", "bestresponse"); err != nil {
		panic(err)
	}
	return r
}

func newIntegrators() *catalog.Registry[dynamics.Integrator] {
	r := catalog.NewRegistry[dynamics.Integrator]("integrator")
	r.MustRegister(catalog.Entry[dynamics.Integrator]{
		Name:  "euler",
		Doc:   "explicit Euler within-phase integration",
		Build: func(json.RawMessage) (dynamics.Integrator, error) { return dynamics.Euler, nil },
	})
	r.MustRegister(catalog.Entry[dynamics.Integrator]{
		Name:  "rk4",
		Doc:   "classical Runge–Kutta within-phase integration (the default)",
		Build: func(json.RawMessage) (dynamics.Integrator, error) { return dynamics.RK4, nil },
	})
	r.MustRegister(catalog.Entry[dynamics.Integrator]{
		Name:  "uniformization",
		Doc:   "exact uniformization of the within-phase linear system",
		Build: func(json.RawMessage) (dynamics.Integrator, error) { return dynamics.Uniformization, nil },
	})
	return r
}

// StartFunc builds an initial flow for an instance — one registered start
// distribution.
type StartFunc func(inst *flow.Instance) (flow.Vector, error)

func newStarts() *catalog.Registry[StartFunc] {
	r := catalog.NewRegistry[StartFunc]("start")
	r.MustRegister(catalog.Entry[StartFunc]{
		Name: "uniform",
		Doc:  "each commodity spreads its demand evenly over its paths (the default)",
		Build: func(json.RawMessage) (StartFunc, error) {
			return func(inst *flow.Instance) (flow.Vector, error) {
				return inst.UniformFlow(), nil
			}, nil
		},
	})
	r.MustRegister(catalog.Entry[StartFunc]{
		Name: "worst",
		Doc:  "each commodity entirely on its highest free-flow-latency path",
		Build: func(json.RawMessage) (StartFunc, error) {
			return worstStart, nil
		},
	})
	r.MustRegister(catalog.Entry[StartFunc]{
		Name: "skewed",
		Doc:  "90% of each commodity on its worst path, the rest spread evenly",
		Build: func(json.RawMessage) (StartFunc, error) {
			return skewedStart, nil
		},
	})
	return r
}

// worstStart routes each commodity entirely on its highest free-flow-latency
// path — the adversarial start of the scaling experiments.
func worstStart(inst *flow.Instance) (flow.Vector, error) {
	f := make(flow.Vector, inst.NumPaths())
	freeFlow := inst.PathLatencies(make(flow.Vector, inst.NumPaths()))
	for i := 0; i < inst.NumCommodities(); i++ {
		lo, _ := inst.CommodityRange(i)
		f[lo+worstPath(inst, i, freeFlow)] = inst.Commodity(i).Demand
	}
	return f, nil
}

// skewedStart puts 90% of each commodity's demand on its worst path and
// spreads the rest evenly — keeping proportional sampling non-degenerate (it
// cannot leave a path with exactly zero flow).
func skewedStart(inst *flow.Instance) (flow.Vector, error) {
	f := make(flow.Vector, inst.NumPaths())
	freeFlow := inst.PathLatencies(make(flow.Vector, inst.NumPaths()))
	for i := 0; i < inst.NumCommodities(); i++ {
		lo, hi := inst.CommodityRange(i)
		d := inst.Commodity(i).Demand
		rest := 0.1 * d / float64(hi-lo)
		for g := lo; g < hi; g++ {
			f[g] = rest
		}
		f[lo+worstPath(inst, i, freeFlow)] += 0.9 * d
	}
	return f, nil
}

// worstPath returns the commodity-local index of the path with the highest
// free-flow latency. freeFlow is the instance's path-latency vector at zero
// flow.
func worstPath(inst *flow.Instance, commodity int, freeFlow []float64) int {
	lo, hi := inst.CommodityRange(commodity)
	best, bestVal := 0, math.Inf(-1)
	for g := lo; g < hi; g++ {
		if freeFlow[g] > bestVal {
			best, bestVal = g-lo, freeFlow[g]
		}
	}
	return best
}

// BuildStart resolves a start-distribution name ("" = uniform) and builds
// the initial flow for the instance.
func BuildStart(name string, inst *flow.Instance) (flow.Vector, error) {
	fn, err := LookupStart(name)
	if err != nil {
		return nil, err
	}
	return fn(inst)
}

// LookupStart resolves a start-distribution name ("" = uniform) without an
// instance — the parse-time validation hook.
func LookupStart(name string) (StartFunc, error) {
	if name == "" {
		name = "uniform"
	}
	return Starts.Build(name, nil)
}
