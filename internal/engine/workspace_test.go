package engine

import (
	"context"
	"math"
	"testing"

	"wardrop/internal/flow"
	"wardrop/internal/policy"
	"wardrop/internal/topo"
)

// TestWithWorkspaceIsTransparent pins the workspace-pooling contract: a
// run with a (reused, dirty) workspace is bit-identical to a run without
// one, for every engine family — the property the sweep's per-worker
// pooling rests on.
func TestWithWorkspaceIsTransparent(t *testing.T) {
	inst, err := topo.Braess()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := policy.Replicator(inst.LMax())
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{
		Instance:     inst,
		Policy:       pol,
		UpdatePeriod: 0.25,
		Horizon:      5,
	}
	engines := []Engine{
		Fluid{},
		Fluid{Fresh: true},
		BestResponse{},
		Agents{N: 300, Seed: 11, Workers: 1},
	}
	ws := flow.NewWorkspace()
	for _, eng := range engines {
		t.Run(eng.Name(), func(t *testing.T) {
			sc := sc
			sc.Engine = eng
			plain, err := Run(context.Background(), sc)
			if err != nil {
				t.Fatal(err)
			}
			// Run twice on the same workspace: the second run sees dirty
			// recycled buffers and must still match.
			for round := 0; round < 2; round++ {
				pooled, err := Run(context.Background(), sc, WithWorkspace(ws))
				if err != nil {
					t.Fatal(err)
				}
				if math.Float64bits(plain.FinalPotential) != math.Float64bits(pooled.FinalPotential) {
					t.Fatalf("round %d: potential %v != %v", round, pooled.FinalPotential, plain.FinalPotential)
				}
				if plain.Phases != pooled.Phases {
					t.Fatalf("round %d: phases %d != %d", round, pooled.Phases, plain.Phases)
				}
				for g := range plain.Final {
					if math.Float64bits(plain.Final[g]) != math.Float64bits(pooled.Final[g]) {
						t.Fatalf("round %d: final[%d] %v != %v", round, g, pooled.Final[g], plain.Final[g])
					}
				}
			}
		})
	}
}
