package graph

import (
	"container/heap"
	"fmt"
	"math"
)

// WeightFunc maps an edge to its non-negative traversal cost.
type WeightFunc func(EdgeID) float64

// ShortestPath computes a minimum-weight directed path from source to sink
// under the given edge weights using Dijkstra's algorithm. Weights must be
// non-negative; a negative weight yields ErrNegativeWeight. If sink is
// unreachable it returns ErrNoPath.
func (g *Graph) ShortestPath(source, sink NodeID, weight WeightFunc) (Path, float64, error) {
	if !g.validNode(source) {
		return Path{}, 0, fmt.Errorf("%w: source=%d", ErrUnknownNode, source)
	}
	if !g.validNode(sink) {
		return Path{}, 0, fmt.Errorf("%w: sink=%d", ErrUnknownNode, sink)
	}
	dist := make([]float64, g.NumNodes())
	prevEdge := make([]EdgeID, g.NumNodes())
	settled := make([]bool, g.NumNodes())
	for i := range dist {
		dist[i] = math.Inf(1)
		prevEdge[i] = -1
	}
	dist[source] = 0

	pq := &nodeHeap{}
	heap.Init(pq)
	heap.Push(pq, nodeDist{node: source, dist: 0})
	for pq.Len() > 0 {
		item := heap.Pop(pq).(nodeDist)
		v := item.node
		if settled[v] {
			continue
		}
		settled[v] = true
		if v == sink {
			break
		}
		for _, e := range g.out[v] {
			w := weight(e)
			if w < 0 {
				return Path{}, 0, fmt.Errorf("%w: edge %d weight %g", ErrNegativeWeight, e, w)
			}
			to := g.edges[e].To
			if nd := dist[v] + w; nd < dist[to] {
				dist[to] = nd
				prevEdge[to] = e
				heap.Push(pq, nodeDist{node: to, dist: nd})
			}
		}
	}
	if math.IsInf(dist[sink], 1) {
		return Path{}, 0, fmt.Errorf("%w: %d -> %d", ErrNoPath, source, sink)
	}
	// Reconstruct edge sequence sink->source, then reverse.
	var rev []EdgeID
	for v := sink; v != source; {
		e := prevEdge[v]
		rev = append(rev, e)
		v = g.edges[e].From
	}
	edges := make([]EdgeID, len(rev))
	for i, e := range rev {
		edges[len(rev)-1-i] = e
	}
	return Path{Edges: edges}, dist[sink], nil
}

type nodeDist struct {
	node NodeID
	dist float64
}

type nodeHeap []nodeDist

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeDist)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
