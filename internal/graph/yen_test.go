package graph

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestKShortestPathsDiamond(t *testing.T) {
	g, s, d := buildDiamond(t)
	weights := map[EdgeID]float64{0: 1, 1: 5, 2: 1, 3: 1}
	wf := func(e EdgeID) float64 { return weights[e] }
	paths, err := g.KShortestPaths(s, d, 3, wf)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 { // only two loopless paths exist
		t.Fatalf("got %d paths: %v", len(paths), paths)
	}
	if pathWeight(paths[0], wf) != 2 || pathWeight(paths[1], wf) != 6 {
		t.Errorf("weights = %g, %g", pathWeight(paths[0], wf), pathWeight(paths[1], wf))
	}
}

func TestKShortestPathsOrderAndCount(t *testing.T) {
	// Braess-like graph with 3 paths of distinct weights.
	g := New()
	s := g.MustAddNode("s")
	a := g.MustAddNode("a")
	b := g.MustAddNode("b")
	d := g.MustAddNode("t")
	w := map[EdgeID]float64{}
	w[g.MustAddEdge(s, a)] = 1
	w[g.MustAddEdge(s, b)] = 4
	w[g.MustAddEdge(a, d)] = 10
	w[g.MustAddEdge(b, d)] = 4
	w[g.MustAddEdge(a, b)] = 1
	wf := func(e EdgeID) float64 { return w[e] }
	paths, err := g.KShortestPaths(s, d, 5, wf)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
	// Costs: s-a-b-t = 6, s-b-t = 8, s-a-t = 11.
	want := []float64{6, 8, 11}
	for i, p := range paths {
		if got := pathWeight(p, wf); math.Abs(got-want[i]) > 1e-12 {
			t.Errorf("path %d cost = %g, want %g (%v)", i, got, want[i], p)
		}
	}
	// k=1 returns just the shortest.
	one, err := g.KShortestPaths(s, d, 1, wf)
	if err != nil || len(one) != 1 || pathWeight(one[0], wf) != 6 {
		t.Errorf("k=1: %v, %v", one, err)
	}
}

func TestKShortestPathsErrors(t *testing.T) {
	g, s, d := buildDiamond(t)
	if _, err := g.KShortestPaths(s, d, 0, unitWeight); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := g.KShortestPaths(d, s, 2, unitWeight); !errors.Is(err, ErrNoPath) {
		t.Errorf("unreachable error = %v", err)
	}
}

func TestKShortestPathsLooplessness(t *testing.T) {
	// Graph with a tempting cycle: all returned paths must be simple.
	g := New()
	s := g.MustAddNode("s")
	a := g.MustAddNode("a")
	b := g.MustAddNode("b")
	d := g.MustAddNode("t")
	w := map[EdgeID]float64{}
	w[g.MustAddEdge(s, a)] = 1
	w[g.MustAddEdge(a, b)] = 0.1
	w[g.MustAddEdge(b, a)] = 0.1 // cycle a<->b
	w[g.MustAddEdge(a, d)] = 2
	w[g.MustAddEdge(b, d)] = 2
	wf := func(e EdgeID) float64 { return w[e] }
	paths, err := g.KShortestPaths(s, d, 10, wf)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if !p.Valid(g) {
			t.Errorf("non-simple path returned: %v", p)
		}
	}
	if len(paths) != 2 {
		t.Errorf("got %d loopless paths, want 2", len(paths))
	}
}

// Property: Yen's first min(k, all) paths agree with brute-force enumeration
// sorted by weight on random-weight layered graphs.
func TestKShortestMatchesEnumeration(t *testing.T) {
	prop := func(seed int64) bool {
		rng := newSplitMix(uint64(seed))
		g := New()
		s := g.MustAddNode("s")
		a := g.MustAddNode("a")
		b := g.MustAddNode("b")
		c := g.MustAddNode("c")
		d := g.MustAddNode("t")
		pairs := [][2]NodeID{{s, a}, {s, b}, {a, c}, {b, c}, {a, b}, {c, d}, {b, d}, {a, d}}
		w := map[EdgeID]float64{}
		for _, pr := range pairs {
			w[g.MustAddEdge(pr[0], pr[1])] = 0.1 + rng.float64()*3
		}
		wf := func(e EdgeID) float64 { return w[e] }
		const k = 4
		yen, err := g.KShortestPaths(s, d, k, wf)
		if err != nil {
			return false
		}
		all, err := g.EnumeratePaths(s, d, 0)
		if err != nil {
			return false
		}
		costs := make([]float64, len(all))
		for i, p := range all {
			costs[i] = pathWeight(p, wf)
		}
		sort.Float64s(costs)
		n := k
		if len(costs) < n {
			n = len(costs)
		}
		if len(yen) != n {
			return false
		}
		for i := 0; i < n; i++ {
			if math.Abs(pathWeight(yen[i], wf)-costs[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
