package graph

import "fmt"

// Path is a directed simple path represented by its edge sequence.
type Path struct {
	Edges []EdgeID
}

// Len returns the number of edges on the path.
func (p Path) Len() int { return len(p.Edges) }

// Nodes returns the node sequence of the path within g, starting at the
// path's source. It returns nil for an empty path.
func (p Path) Nodes(g *Graph) []NodeID {
	if len(p.Edges) == 0 {
		return nil
	}
	nodes := make([]NodeID, 0, len(p.Edges)+1)
	first, _ := g.Edge(p.Edges[0])
	nodes = append(nodes, first.From)
	for _, e := range p.Edges {
		edge, _ := g.Edge(e)
		nodes = append(nodes, edge.To)
	}
	return nodes
}

// String renders the path as an edge-ID sequence, e.g. "e0->e3->e5".
func (p Path) String() string {
	s := ""
	for i, e := range p.Edges {
		if i > 0 {
			s += "->"
		}
		s += fmt.Sprintf("e%d", int(e))
	}
	if s == "" {
		return "<empty>"
	}
	return s
}

// Equal reports whether two paths traverse the same edge sequence.
func (p Path) Equal(q Path) bool {
	if len(p.Edges) != len(q.Edges) {
		return false
	}
	for i := range p.Edges {
		if p.Edges[i] != q.Edges[i] {
			return false
		}
	}
	return true
}

// Valid reports whether p is a connected simple directed path in g.
func (p Path) Valid(g *Graph) bool {
	if len(p.Edges) == 0 {
		return false
	}
	seen := map[NodeID]bool{}
	prev, ok := g.Edge(p.Edges[0])
	if !ok {
		return false
	}
	seen[prev.From] = true
	seen[prev.To] = true
	for _, id := range p.Edges[1:] {
		e, ok := g.Edge(id)
		if !ok || e.From != prev.To {
			return false
		}
		if seen[e.To] {
			return false
		}
		seen[e.To] = true
		prev = e
	}
	return true
}

// EnumeratePaths returns all simple directed paths from source to sink with at
// most maxLen edges. maxLen <= 0 means "no bound beyond simplicity"
// (equivalently NumNodes-1 edges). Paths are returned in lexicographic order
// of their edge-ID sequences. It returns ErrNoPath if none exists.
func (g *Graph) EnumeratePaths(source, sink NodeID, maxLen int) ([]Path, error) {
	if !g.validNode(source) {
		return nil, fmt.Errorf("%w: source=%d", ErrUnknownNode, source)
	}
	if !g.validNode(sink) {
		return nil, fmt.Errorf("%w: sink=%d", ErrUnknownNode, sink)
	}
	if maxLen <= 0 || maxLen > g.NumNodes()-1 {
		maxLen = g.NumNodes() - 1
	}
	var (
		paths   []Path
		current []EdgeID
		onPath  = make([]bool, g.NumNodes())
	)
	var visit func(v NodeID)
	visit = func(v NodeID) {
		if v == sink {
			cp := make([]EdgeID, len(current))
			copy(cp, current)
			paths = append(paths, Path{Edges: cp})
			return
		}
		if len(current) >= maxLen {
			return
		}
		onPath[v] = true
		for _, e := range g.out[v] {
			w := g.edges[e].To
			if onPath[w] {
				continue
			}
			current = append(current, e)
			visit(w)
			current = current[:len(current)-1]
		}
		onPath[v] = false
	}
	if source == sink {
		return nil, fmt.Errorf("%w: source equals sink (node %d)", ErrNoPath, source)
	}
	visit(source)
	if len(paths) == 0 {
		return nil, fmt.Errorf("%w: %d -> %d", ErrNoPath, source, sink)
	}
	return paths, nil
}

// CountPaths returns the number of simple paths from source to sink with at
// most maxLen edges without materialising them.
func (g *Graph) CountPaths(source, sink NodeID, maxLen int) (int, error) {
	paths, err := g.EnumeratePaths(source, sink, maxLen)
	if err != nil {
		return 0, err
	}
	return len(paths), nil
}
