package graph

import (
	"fmt"
	"math"
	"sort"
)

// KShortestPaths returns up to k loopless shortest paths from source to sink
// in increasing weight order, using Yen's algorithm over the Dijkstra
// subroutine. It is the strategy-space builder for graphs whose full simple-
// path enumeration explodes: instances can restrict each commodity to its K
// cheapest paths instead. Weights must be non-negative. It returns ErrNoPath
// if no path exists; fewer than k paths are returned when the graph has
// fewer loopless paths.
func (g *Graph) KShortestPaths(source, sink NodeID, k int, weight WeightFunc) ([]Path, error) {
	if k < 1 {
		return nil, fmt.Errorf("graph: KShortestPaths needs k >= 1, got %d", k)
	}
	best, _, err := g.ShortestPath(source, sink, weight)
	if err != nil {
		return nil, err
	}
	accepted := []Path{best}
	seen := map[string]bool{best.String(): true}
	var candidates []candidatePath

	for len(accepted) < k {
		prev := accepted[len(accepted)-1]
		prevNodes := prev.Nodes(g)
		// Spur from every node of the previously accepted path except the
		// sink.
		for i := 0; i < len(prev.Edges); i++ {
			spurNode := prevNodes[i]
			rootEdges := prev.Edges[:i]

			bannedEdges := map[EdgeID]bool{}
			for _, p := range accepted {
				if hasPrefix(p.Edges, rootEdges) && len(p.Edges) > i {
					bannedEdges[p.Edges[i]] = true
				}
			}
			bannedNodes := map[NodeID]bool{}
			for _, v := range prevNodes[:i] {
				bannedNodes[v] = true
			}

			w := func(e EdgeID) float64 {
				if bannedEdges[e] {
					return math.Inf(1)
				}
				edge, _ := g.Edge(e)
				if bannedNodes[edge.To] || bannedNodes[edge.From] {
					return math.Inf(1)
				}
				return weight(e)
			}
			spur, _, err := g.ShortestPath(spurNode, sink, w)
			if err != nil {
				continue // no spur path from here
			}
			total := make([]EdgeID, 0, len(rootEdges)+len(spur.Edges))
			total = append(total, rootEdges...)
			total = append(total, spur.Edges...)
			cand := Path{Edges: total}
			if !cand.Valid(g) {
				continue // root+spur revisits a node
			}
			key := cand.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			candidates = append(candidates, candidatePath{path: cand, cost: pathWeight(cand, weight)})
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool { return candidates[a].cost < candidates[b].cost })
		accepted = append(accepted, candidates[0].path)
		candidates = candidates[1:]
	}
	return accepted, nil
}

type candidatePath struct {
	path Path
	cost float64
}

func pathWeight(p Path, weight WeightFunc) float64 {
	total := 0.0
	for _, e := range p.Edges {
		total += weight(e)
	}
	return total
}

func hasPrefix(edges, prefix []EdgeID) bool {
	if len(edges) < len(prefix) {
		return false
	}
	for i := range prefix {
		if edges[i] != prefix[i] {
			return false
		}
	}
	return true
}
