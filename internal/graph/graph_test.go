package graph

import (
	"errors"
	"testing"
)

func buildDiamond(t *testing.T) (*Graph, NodeID, NodeID) {
	t.Helper()
	g := New()
	s := g.MustAddNode("s")
	a := g.MustAddNode("a")
	b := g.MustAddNode("b")
	d := g.MustAddNode("t")
	g.MustAddEdge(s, a)
	g.MustAddEdge(s, b)
	g.MustAddEdge(a, d)
	g.MustAddEdge(b, d)
	return g, s, d
}

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := New()
	for i, name := range []string{"a", "b", "c"} {
		id, err := g.AddNode(name)
		if err != nil {
			t.Fatalf("AddNode(%q): %v", name, err)
		}
		if int(id) != i {
			t.Errorf("AddNode(%q) = %d, want %d", name, id, i)
		}
	}
	if g.NumNodes() != 3 {
		t.Errorf("NumNodes = %d, want 3", g.NumNodes())
	}
}

func TestAddNodeDuplicateName(t *testing.T) {
	g := New()
	g.MustAddNode("x")
	if _, err := g.AddNode("x"); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("duplicate AddNode error = %v, want ErrDuplicateName", err)
	}
}

func TestNodeLookup(t *testing.T) {
	g := New()
	id := g.MustAddNode("hub")
	got, ok := g.Node("hub")
	if !ok || got != id {
		t.Errorf("Node(hub) = %d,%v, want %d,true", got, ok, id)
	}
	if _, ok := g.Node("missing"); ok {
		t.Error("Node(missing) reported ok")
	}
	if name := g.NodeName(id); name != "hub" {
		t.Errorf("NodeName = %q, want hub", name)
	}
	if name := g.NodeName(NodeID(99)); name != "" {
		t.Errorf("NodeName(out of range) = %q, want empty", name)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New()
	a := g.MustAddNode("a")
	b := g.MustAddNode("b")
	if _, err := g.AddEdge(a, a); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self-loop error = %v, want ErrSelfLoop", err)
	}
	if _, err := g.AddEdge(a, NodeID(42)); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown-node error = %v, want ErrUnknownNode", err)
	}
	if _, err := g.AddEdge(NodeID(-1), b); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("negative-node error = %v, want ErrUnknownNode", err)
	}
}

func TestParallelEdgesAllowed(t *testing.T) {
	g := New()
	a := g.MustAddNode("a")
	b := g.MustAddNode("b")
	e1 := g.MustAddEdge(a, b)
	e2 := g.MustAddEdge(a, b)
	if e1 == e2 {
		t.Fatal("parallel edges share an ID")
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	if got := g.OutEdges(a); len(got) != 2 {
		t.Errorf("OutEdges(a) = %v, want two edges", got)
	}
	if got := g.InEdges(b); len(got) != 2 {
		t.Errorf("InEdges(b) = %v, want two edges", got)
	}
}

func TestEdgeAccessor(t *testing.T) {
	g := New()
	a := g.MustAddNode("a")
	b := g.MustAddNode("b")
	id := g.MustAddEdge(a, b)
	e, ok := g.Edge(id)
	if !ok || e.From != a || e.To != b || e.ID != id {
		t.Errorf("Edge(%d) = %+v,%v", id, e, ok)
	}
	if _, ok := g.Edge(EdgeID(7)); ok {
		t.Error("Edge(out of range) reported ok")
	}
}

func TestReachable(t *testing.T) {
	g, s, d := buildDiamond(t)
	if !g.Reachable(s, d) {
		t.Error("s should reach t")
	}
	if g.Reachable(d, s) {
		t.Error("t should not reach s")
	}
	if !g.Reachable(s, s) {
		t.Error("a node reaches itself")
	}
	if g.Reachable(s, NodeID(77)) {
		t.Error("out-of-range target should be unreachable")
	}
}

func TestIsAcyclic(t *testing.T) {
	g, _, _ := buildDiamond(t)
	if !g.IsAcyclic() {
		t.Error("diamond should be acyclic")
	}
	a, _ := g.Node("a")
	b, _ := g.Node("b")
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, a)
	if g.IsAcyclic() {
		t.Error("graph with 2-cycle reported acyclic")
	}
}

func TestValidate(t *testing.T) {
	g, _, _ := buildDiamond(t)
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	g.edges[0].ID = 5
	if err := g.Validate(); err == nil {
		t.Error("Validate missed corrupted edge ID")
	}
}

func TestZeroValueGraphUsable(t *testing.T) {
	var g Graph
	if _, err := g.AddNode("only"); err != nil {
		t.Fatalf("zero-value AddNode: %v", err)
	}
	if g.NumNodes() != 1 {
		t.Errorf("NumNodes = %d, want 1", g.NumNodes())
	}
}
