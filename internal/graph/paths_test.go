package graph

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestEnumeratePathsDiamond(t *testing.T) {
	g, s, d := buildDiamond(t)
	paths, err := g.EnumeratePaths(s, d, 0)
	if err != nil {
		t.Fatalf("EnumeratePaths: %v", err)
	}
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2: %v", len(paths), paths)
	}
	for _, p := range paths {
		if !p.Valid(g) {
			t.Errorf("invalid path %v", p)
		}
		if p.Len() != 2 {
			t.Errorf("path %v has length %d, want 2", p, p.Len())
		}
	}
}

func TestEnumeratePathsBraessCount(t *testing.T) {
	// Braess network: s->a, s->b, a->t, b->t plus bridge a->b: 3 paths.
	g := New()
	s := g.MustAddNode("s")
	a := g.MustAddNode("a")
	b := g.MustAddNode("b")
	d := g.MustAddNode("t")
	g.MustAddEdge(s, a)
	g.MustAddEdge(s, b)
	g.MustAddEdge(a, d)
	g.MustAddEdge(b, d)
	g.MustAddEdge(a, b)
	paths, err := g.EnumeratePaths(s, d, 0)
	if err != nil {
		t.Fatalf("EnumeratePaths: %v", err)
	}
	if len(paths) != 3 {
		t.Fatalf("Braess should have 3 paths, got %d", len(paths))
	}
}

func TestEnumeratePathsMaxLen(t *testing.T) {
	g := New()
	s := g.MustAddNode("s")
	a := g.MustAddNode("a")
	b := g.MustAddNode("b")
	d := g.MustAddNode("t")
	g.MustAddEdge(s, d) // length 1
	g.MustAddEdge(s, a) // length 3 via a,b
	g.MustAddEdge(a, b) //
	g.MustAddEdge(b, d) //
	paths, err := g.EnumeratePaths(s, d, 1)
	if err != nil {
		t.Fatalf("EnumeratePaths: %v", err)
	}
	if len(paths) != 1 || paths[0].Len() != 1 {
		t.Fatalf("maxLen=1 should keep only direct edge, got %v", paths)
	}
	paths, err = g.EnumeratePaths(s, d, 0)
	if err != nil {
		t.Fatalf("EnumeratePaths: %v", err)
	}
	if len(paths) != 2 {
		t.Fatalf("unbounded enumeration should find 2 paths, got %d", len(paths))
	}
}

func TestEnumeratePathsAvoidsCycles(t *testing.T) {
	g := New()
	s := g.MustAddNode("s")
	a := g.MustAddNode("a")
	d := g.MustAddNode("t")
	g.MustAddEdge(s, a)
	g.MustAddEdge(a, s) // back edge creating a cycle
	g.MustAddEdge(a, d)
	paths, err := g.EnumeratePaths(s, d, 0)
	if err != nil {
		t.Fatalf("EnumeratePaths: %v", err)
	}
	if len(paths) != 1 {
		t.Fatalf("cycle must not generate extra paths, got %v", paths)
	}
}

func TestEnumeratePathsErrors(t *testing.T) {
	g, s, d := buildDiamond(t)
	if _, err := g.EnumeratePaths(d, s, 0); !errors.Is(err, ErrNoPath) {
		t.Errorf("reverse enumeration error = %v, want ErrNoPath", err)
	}
	if _, err := g.EnumeratePaths(s, s, 0); !errors.Is(err, ErrNoPath) {
		t.Errorf("source==sink error = %v, want ErrNoPath", err)
	}
	if _, err := g.EnumeratePaths(NodeID(9), d, 0); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown source error = %v, want ErrUnknownNode", err)
	}
	if _, err := g.EnumeratePaths(s, NodeID(9), 0); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown sink error = %v, want ErrUnknownNode", err)
	}
}

func TestCountPaths(t *testing.T) {
	g, s, d := buildDiamond(t)
	n, err := g.CountPaths(s, d, 0)
	if err != nil || n != 2 {
		t.Errorf("CountPaths = %d,%v, want 2,nil", n, err)
	}
}

func TestPathNodesAndString(t *testing.T) {
	g, s, d := buildDiamond(t)
	paths, _ := g.EnumeratePaths(s, d, 0)
	nodes := paths[0].Nodes(g)
	if len(nodes) != 3 || nodes[0] != s || nodes[2] != d {
		t.Errorf("Nodes = %v", nodes)
	}
	if paths[0].String() == "" || paths[0].String() == "<empty>" {
		t.Errorf("String = %q", paths[0].String())
	}
	if (Path{}).String() != "<empty>" {
		t.Errorf("empty path String = %q", (Path{}).String())
	}
	if (Path{}).Nodes(g) != nil {
		t.Error("empty path Nodes should be nil")
	}
}

func TestPathEqual(t *testing.T) {
	p := Path{Edges: []EdgeID{0, 1}}
	q := Path{Edges: []EdgeID{0, 1}}
	r := Path{Edges: []EdgeID{0, 2}}
	s := Path{Edges: []EdgeID{0}}
	if !p.Equal(q) || p.Equal(r) || p.Equal(s) {
		t.Error("Equal misbehaves")
	}
}

func TestPathValid(t *testing.T) {
	g, s, d := buildDiamond(t)
	paths, _ := g.EnumeratePaths(s, d, 0)
	if !paths[0].Valid(g) {
		t.Error("enumerated path should be valid")
	}
	if (Path{}).Valid(g) {
		t.Error("empty path should be invalid")
	}
	disconnected := Path{Edges: []EdgeID{0, 3}} // s->a then b->t: disconnected
	if disconnected.Valid(g) {
		t.Error("disconnected edge sequence should be invalid")
	}
	if (Path{Edges: []EdgeID{99}}).Valid(g) {
		t.Error("out-of-range edge should be invalid")
	}
}

// Property: on layered graphs with w parallel relay nodes, the number of
// enumerated s-t paths equals w, and every path is simple and valid.
func TestEnumeratePathsPropertyLayered(t *testing.T) {
	f := func(width uint8) bool {
		w := int(width%6) + 1
		g := New()
		s := g.MustAddNode("s")
		d := g.MustAddNode("t")
		for i := 0; i < w; i++ {
			mid := g.MustAddNode("m" + string(rune('a'+i)))
			g.MustAddEdge(s, mid)
			g.MustAddEdge(mid, d)
		}
		paths, err := g.EnumeratePaths(s, d, 0)
		if err != nil || len(paths) != w {
			return false
		}
		for _, p := range paths {
			if !p.Valid(g) || p.Len() != 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
