package graph

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func unitWeight(EdgeID) float64 { return 1 }

func TestShortestPathDiamond(t *testing.T) {
	g, s, d := buildDiamond(t)
	weights := map[EdgeID]float64{0: 1, 1: 5, 2: 1, 3: 1}
	p, dist, err := g.ShortestPath(s, d, func(e EdgeID) float64 { return weights[e] })
	if err != nil {
		t.Fatalf("ShortestPath: %v", err)
	}
	if dist != 2 {
		t.Errorf("dist = %g, want 2", dist)
	}
	if len(p.Edges) != 2 || p.Edges[0] != 0 || p.Edges[1] != 2 {
		t.Errorf("path = %v, want e0->e2", p)
	}
}

func TestShortestPathPrefersParallelEdge(t *testing.T) {
	g := New()
	a := g.MustAddNode("a")
	b := g.MustAddNode("b")
	slow := g.MustAddEdge(a, b)
	fast := g.MustAddEdge(a, b)
	w := map[EdgeID]float64{slow: 10, fast: 1}
	p, dist, err := g.ShortestPath(a, b, func(e EdgeID) float64 { return w[e] })
	if err != nil {
		t.Fatalf("ShortestPath: %v", err)
	}
	if dist != 1 || p.Edges[0] != fast {
		t.Errorf("got path %v dist %g, want fast edge dist 1", p, dist)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New()
	a := g.MustAddNode("a")
	b := g.MustAddNode("b")
	if _, _, err := g.ShortestPath(a, b, unitWeight); !errors.Is(err, ErrNoPath) {
		t.Errorf("error = %v, want ErrNoPath", err)
	}
}

func TestShortestPathNegativeWeight(t *testing.T) {
	g := New()
	a := g.MustAddNode("a")
	b := g.MustAddNode("b")
	g.MustAddEdge(a, b)
	_, _, err := g.ShortestPath(a, b, func(EdgeID) float64 { return -1 })
	if !errors.Is(err, ErrNegativeWeight) {
		t.Errorf("error = %v, want ErrNegativeWeight", err)
	}
}

func TestShortestPathInvalidNodes(t *testing.T) {
	g, s, _ := buildDiamond(t)
	if _, _, err := g.ShortestPath(NodeID(50), s, unitWeight); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("error = %v, want ErrUnknownNode", err)
	}
	if _, _, err := g.ShortestPath(s, NodeID(50), unitWeight); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("error = %v, want ErrUnknownNode", err)
	}
}

func TestShortestPathSourceEqualsSink(t *testing.T) {
	g, s, _ := buildDiamond(t)
	p, dist, err := g.ShortestPath(s, s, unitWeight)
	if err != nil {
		t.Fatalf("ShortestPath(s,s): %v", err)
	}
	if dist != 0 || len(p.Edges) != 0 {
		t.Errorf("got %v dist %g, want empty path dist 0", p, dist)
	}
}

// Property: Dijkstra's distance matches the brute-force minimum over all
// enumerated simple paths when all weights are positive (so no shortest walk
// revisits a node).
func TestShortestPathMatchesEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := newSplitMix(uint64(seed))
		g := New()
		s := g.MustAddNode("s")
		a := g.MustAddNode("a")
		b := g.MustAddNode("b")
		c := g.MustAddNode("c")
		d := g.MustAddNode("t")
		pairs := [][2]NodeID{{s, a}, {s, b}, {a, c}, {b, c}, {a, b}, {c, d}, {b, d}, {a, d}}
		weights := make(map[EdgeID]float64)
		for _, pr := range pairs {
			id := g.MustAddEdge(pr[0], pr[1])
			weights[id] = 0.1 + rng.float64()*5
		}
		wf := func(e EdgeID) float64 { return weights[e] }
		_, dist, err := g.ShortestPath(s, d, wf)
		if err != nil {
			return false
		}
		paths, err := g.EnumeratePaths(s, d, 0)
		if err != nil {
			return false
		}
		best := math.Inf(1)
		for _, p := range paths {
			total := 0.0
			for _, e := range p.Edges {
				total += weights[e]
			}
			if total < best {
				best = total
			}
		}
		return math.Abs(best-dist) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// splitMix is a tiny deterministic RNG for property tests in this package.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitMix) float64() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}
