// Package graph implements the directed multigraph substrate of the Wardrop
// routing model: node/edge bookkeeping, simple-path enumeration between
// terminals, and shortest-path queries. It is deliberately minimal and
// allocation-conscious; higher layers (flow, dynamics) treat it as read-only
// after construction.
package graph

import (
	"errors"
	"fmt"
)

// NodeID identifies a node; IDs are dense indices assigned in insertion order.
type NodeID int

// EdgeID identifies an edge; IDs are dense indices assigned in insertion order.
type EdgeID int

// Sentinel errors returned by graph construction and queries.
var (
	// ErrUnknownNode indicates a NodeID outside the graph.
	ErrUnknownNode = errors.New("graph: unknown node")
	// ErrSelfLoop indicates an attempt to add an edge from a node to itself.
	ErrSelfLoop = errors.New("graph: self-loop edges are not allowed")
	// ErrDuplicateName indicates an attempt to add a second node with the
	// same name.
	ErrDuplicateName = errors.New("graph: duplicate node name")
	// ErrNoPath indicates that no path exists between the requested terminals.
	ErrNoPath = errors.New("graph: no path between terminals")
	// ErrNegativeWeight indicates a negative edge weight passed to a
	// shortest-path query.
	ErrNegativeWeight = errors.New("graph: negative edge weight")
)

// Edge is a directed edge of the multigraph. Parallel edges (same endpoints)
// are permitted and receive distinct IDs.
type Edge struct {
	ID   EdgeID
	From NodeID
	To   NodeID
}

// Graph is a directed finite multigraph. The zero value is an empty graph
// ready for use. Graph is not safe for concurrent mutation; once built it is
// safe for concurrent reads.
type Graph struct {
	names     []string
	nameIndex map[string]NodeID
	edges     []Edge
	out       [][]EdgeID
	in        [][]EdgeID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{nameIndex: make(map[string]NodeID)}
}

// AddNode adds a node with the given name and returns its ID. Names must be
// unique; adding a duplicate name returns ErrDuplicateName.
func (g *Graph) AddNode(name string) (NodeID, error) {
	if g.nameIndex == nil {
		g.nameIndex = make(map[string]NodeID)
	}
	if _, ok := g.nameIndex[name]; ok {
		return 0, fmt.Errorf("%w: %q", ErrDuplicateName, name)
	}
	id := NodeID(len(g.names))
	g.names = append(g.names, name)
	g.nameIndex[name] = id
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id, nil
}

// MustAddNode is AddNode for static construction code where a duplicate name
// is a programmer error.
func (g *Graph) MustAddNode(name string) NodeID {
	id, err := g.AddNode(name)
	if err != nil {
		panic(err)
	}
	return id
}

// Node returns the ID of the node with the given name.
func (g *Graph) Node(name string) (NodeID, bool) {
	id, ok := g.nameIndex[name]
	return id, ok
}

// NodeName returns the name of node v, or "" if v is out of range.
func (g *Graph) NodeName(v NodeID) string {
	if !g.validNode(v) {
		return ""
	}
	return g.names[v]
}

// AddEdge adds a directed edge from one node to another and returns its ID.
// Parallel edges are allowed; self-loops are rejected with ErrSelfLoop.
func (g *Graph) AddEdge(from, to NodeID) (EdgeID, error) {
	if !g.validNode(from) {
		return 0, fmt.Errorf("%w: from=%d", ErrUnknownNode, from)
	}
	if !g.validNode(to) {
		return 0, fmt.Errorf("%w: to=%d", ErrUnknownNode, to)
	}
	if from == to {
		return 0, fmt.Errorf("%w: node %d", ErrSelfLoop, from)
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, From: from, To: to})
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	return id, nil
}

// MustAddEdge is AddEdge for static construction code.
func (g *Graph) MustAddEdge(from, to NodeID) EdgeID {
	id, err := g.AddEdge(from, to)
	if err != nil {
		panic(err)
	}
	return id
}

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int { return len(g.names) }

// NumEdges reports the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(e EdgeID) (Edge, bool) {
	if int(e) < 0 || int(e) >= len(g.edges) {
		return Edge{}, false
	}
	return g.edges[e], true
}

// OutEdges returns the IDs of edges leaving v. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) OutEdges(v NodeID) []EdgeID {
	if !g.validNode(v) {
		return nil
	}
	return g.out[v]
}

// InEdges returns the IDs of edges entering v. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) InEdges(v NodeID) []EdgeID {
	if !g.validNode(v) {
		return nil
	}
	return g.in[v]
}

// Reachable reports whether to is reachable from from following edge
// directions.
func (g *Graph) Reachable(from, to NodeID) bool {
	if !g.validNode(from) || !g.validNode(to) {
		return false
	}
	if from == to {
		return true
	}
	seen := make([]bool, g.NumNodes())
	stack := []NodeID{from}
	seen[from] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.out[v] {
			w := g.edges[e].To
			if w == to {
				return true
			}
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}

// IsAcyclic reports whether the graph contains no directed cycle.
func (g *Graph) IsAcyclic() bool {
	const (
		unvisited = 0
		onStack   = 1
		done      = 2
	)
	state := make([]byte, g.NumNodes())
	var visit func(v NodeID) bool
	visit = func(v NodeID) bool {
		state[v] = onStack
		for _, e := range g.out[v] {
			w := g.edges[e].To
			switch state[w] {
			case onStack:
				return false
			case unvisited:
				if !visit(w) {
					return false
				}
			}
		}
		state[v] = done
		return true
	}
	for v := 0; v < g.NumNodes(); v++ {
		if state[v] == unvisited && !visit(NodeID(v)) {
			return false
		}
	}
	return true
}

// Validate checks internal consistency; it returns a non-nil error only if
// the graph was corrupted by direct struct manipulation.
func (g *Graph) Validate() error {
	for i, e := range g.edges {
		if EdgeID(i) != e.ID {
			return fmt.Errorf("graph: edge %d has mismatched ID %d", i, e.ID)
		}
		if !g.validNode(e.From) || !g.validNode(e.To) {
			return fmt.Errorf("graph: edge %d has invalid endpoints", i)
		}
	}
	if len(g.out) != len(g.names) || len(g.in) != len(g.names) {
		return errors.New("graph: adjacency size mismatch")
	}
	return nil
}

func (g *Graph) validNode(v NodeID) bool {
	return int(v) >= 0 && int(v) < len(g.names)
}
