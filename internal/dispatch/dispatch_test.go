package dispatch

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wardrop/internal/serve"
	"wardrop/internal/store"
	"wardrop/internal/sweep"
)

const campaignDoc = `{
	"name": "dist",
	"topologies": [{"family":"pigou"},{"family":"braess"}],
	"policies": [{"kind":"replicator"},{"kind":"uniform"}],
	"updatePeriods": [0.05],
	"seeds": 3,
	"maxPhases": 25,
	"delta": 0.3,
	"eps": 0.15
}`

func parseCampaign(t *testing.T, doc string) *sweep.Campaign {
	t.Helper()
	c, err := sweep.ParseCampaign(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// startWorkers launches n in-process wardserve instances and returns their
// servers and URLs. Teardown rides the test cleanup.
func startWorkers(t *testing.T, n int, cfg serve.Config) ([]*serve.Server, []*httptest.Server, []string) {
	t.Helper()
	servers := make([]*serve.Server, n)
	https := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		s := serve.New(cfg)
		ts := httptest.NewServer(s)
		servers[i], https[i], urls[i] = s, ts, ts.URL
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
			defer cancel()
			_ = s.Close(ctx)
		})
	}
	return servers, https, urls
}

// canonicalBytes renders records in the canonical byte-comparable form.
func canonicalBytes(t *testing.T, recs []sweep.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sweep.EncodeRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDistributedByteIdentity(t *testing.T) {
	c := parseCampaign(t, campaignDoc)
	local, err := sweep.Run(context.Background(), c, sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, _, urls := startWorkers(t, 3, serve.Config{Workers: 2})
	dist, err := Run(context.Background(), parseCampaign(t, campaignDoc), urls, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dist.Records) != len(local.Records) {
		t.Fatalf("distributed records = %d, local = %d", len(dist.Records), len(local.Records))
	}
	if got, want := canonicalBytes(t, dist.Records), canonicalBytes(t, local.Records); !bytes.Equal(got, want) {
		t.Errorf("distributed records differ from local:\n got %s\nwant %s", got, want)
	}
	// Wall time flows to in-memory consumers even though the canonical form
	// strips it: every distributed record carries the measured round trip.
	for _, r := range dist.Records {
		if r.WallMS <= 0 {
			t.Errorf("record %d has no wall time", r.ID)
		}
	}
}

// TestWorkerFailureMidCampaign kills one of three workers partway through
// and requires the merged output to stay byte-identical to a local run: the
// dead node's tasks must fail over to the survivors.
func TestWorkerFailureMidCampaign(t *testing.T) {
	doc := strings.Replace(campaignDoc, `"seeds": 3`, `"seeds": 9`, 1)
	c := parseCampaign(t, doc)
	local, err := sweep.Run(context.Background(), c, sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, https, urls := startWorkers(t, 3, serve.Config{Workers: 2})

	var (
		kill    sync.Once
		evMu    sync.Mutex
		deaths  int
		retries int
	)
	opts := Options{
		Progress: func(done, total int, rec sweep.Record) {
			if done == 5 {
				kill.Do(func() {
					// Sever in-flight connections and the listener from a
					// separate goroutine: Close blocks on outstanding
					// requests, and the collector must keep draining.
					go func() {
						https[2].CloseClientConnections()
						https[2].Close()
					}()
				})
			}
		},
		Events: func(ev Event) {
			evMu.Lock()
			defer evMu.Unlock()
			switch ev.Kind {
			case EventNodeDead:
				deaths++
			case EventRetry:
				retries++
			}
		},
	}
	dist, err := Run(context.Background(), parseCampaign(t, doc), urls, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist.Records) != len(local.Records) {
		t.Fatalf("distributed records = %d, local = %d", len(dist.Records), len(local.Records))
	}
	for _, r := range dist.Records {
		if r.Error != "" {
			t.Errorf("record %d carries an error after failover: %s", r.ID, r.Error)
		}
	}
	if got, want := canonicalBytes(t, dist.Records), canonicalBytes(t, local.Records); !bytes.Equal(got, want) {
		t.Error("records differ from local run after a worker death")
	}
	evMu.Lock()
	defer evMu.Unlock()
	if deaths != 1 {
		t.Errorf("node-dead events = %d, want 1", deaths)
	}
}

// TestSecondRunIsAllCacheHits re-submits a campaign to a fleet sharing one
// durable store and pins the fleet-wide engine-run counter: consistent
// hashing keeps fingerprints on their home nodes, and anything work stealing
// moved in the first run is answered from the shared store.
func TestSecondRunIsAllCacheHits(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	servers, _, urls := startWorkers(t, 2, serve.Config{Workers: 2, Store: st})
	if _, err := Run(context.Background(), parseCampaign(t, campaignDoc), urls, Options{}); err != nil {
		t.Fatal(err)
	}
	total := func() int64 {
		var n int64
		for _, s := range servers {
			n += s.EngineRuns()
		}
		return n
	}
	first := total()
	if first == 0 {
		t.Fatal("no engine runs recorded on the fleet")
	}
	dist, err := Run(context.Background(), parseCampaign(t, campaignDoc), urls, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := total(); got != first {
		t.Errorf("EngineRuns moved on a repeat campaign: %d -> %d", first, got)
	}
	if len(dist.Records) == 0 {
		t.Fatal("repeat run returned no records")
	}
}

func TestCancellationPropagates(t *testing.T) {
	// Effectively endless tasks; the run must come back promptly with the
	// context error once cancelled.
	doc := `{
		"name": "slow",
		"topologies": [{"family":"pigou"}],
		"policies": [{"kind":"replicator"}],
		"updatePeriods": [0.01],
		"seeds": 4,
		"horizon": 1000000
	}`
	_, _, urls := startWorkers(t, 2, serve.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := Run(ctx, parseCampaign(t, doc), urls, Options{})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if ctx.Err() == nil || time.Since(start) > 5*time.Second {
		t.Fatalf("run did not return promptly on cancellation (%v after %v)", err, time.Since(start))
	}
	if res == nil {
		t.Fatal("cancelled run returned nil result")
	}
	if len(res.Records) != 0 {
		t.Errorf("endless tasks produced %d records", len(res.Records))
	}
}

func TestNoWorkers(t *testing.T) {
	if _, err := Run(context.Background(), parseCampaign(t, campaignDoc), nil, Options{}); err == nil {
		t.Fatal("no-worker run succeeded")
	}
}

func TestRingStabilityAndFailover(t *testing.T) {
	workers := []string{"http://a", "http://b", "http://c"}
	r := newRing(workers)
	alive := []bool{true, true, true}
	keys := make([]string, 0, 200)
	for i := 0; i < 200; i++ {
		keys = append(keys, strings.Repeat("k", 1+i%7)+string(rune('a'+i%26))+string(rune('0'+i%10)))
	}
	owners := make(map[string]int, len(keys))
	counts := make([]int, 3)
	for _, k := range keys {
		o := r.owner(k, alive)
		if o < 0 {
			t.Fatalf("no owner for %q", k)
		}
		owners[k] = o
		counts[o]++
	}
	for i, n := range counts {
		if n == 0 {
			t.Errorf("node %d owns nothing across %d keys", i, len(keys))
		}
	}
	// Killing node 1 must move only node 1's keys.
	alive[1] = false
	for _, k := range keys {
		o := r.owner(k, alive)
		if owners[k] != 1 && o != owners[k] {
			t.Fatalf("key %q moved from surviving node %d to %d", k, owners[k], o)
		}
		if owners[k] == 1 && o == 1 {
			t.Fatalf("key %q still owned by the dead node", k)
		}
	}
	// No one alive: no owner.
	if o := r.owner(keys[0], []bool{false, false, false}); o != -1 {
		t.Fatalf("dead fleet produced owner %d", o)
	}
}
