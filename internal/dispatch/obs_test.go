package dispatch

import (
	"context"
	"strings"
	"sync"
	"testing"

	"wardrop/internal/obs"
	"wardrop/internal/serve"
	"wardrop/internal/sweep"
)

// TestRunPopulatesMetrics pins the coordinator's instrumentation on a clean
// distributed run: per-unit queue-wait and per-attempt transport samples,
// per-node in-flight gauges registered, and quiet failure counters.
func TestRunPopulatesMetrics(t *testing.T) {
	_, _, urls := startWorkers(t, 2, serve.Config{Workers: 2})
	camp := parseCampaign(t, campaignDoc)
	tasks, err := camp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	units, err := buildUnits(camp, tasks)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	res, err := Run(context.Background(), parseCampaign(t, campaignDoc), urls, Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(tasks) {
		t.Fatalf("records = %d, want %d", len(res.Records), len(tasks))
	}

	qw := reg.FindHistogram("dispatch_queue_wait_ms")
	if qw == nil || qw.Count() != int64(len(units)) {
		t.Fatalf("queue-wait samples = %v, want one per unit (%d)", qw, len(units))
	}
	tr := reg.FindHistogram("dispatch_transport_ms")
	if tr == nil || tr.Count() < int64(len(units)) {
		t.Fatalf("transport samples = %v, want >= %d", tr, len(units))
	}
	names := make(map[string]bool)
	for _, n := range reg.Names() {
		names[n] = true
	}
	for _, url := range urls {
		if !names[`dispatch_inflight{node="`+url+`"}`] {
			t.Fatalf("per-node in-flight gauge for %s not registered (have %v)", url, reg.Names())
		}
	}
	if got := reg.Counter("dispatch_node_deaths_total", "").Value(); got != 0 {
		t.Fatalf("node deaths = %d on a healthy fleet", got)
	}
	if got := reg.Counter("dispatch_rehomed_total", "").Value(); got != 0 {
		t.Fatalf("re-homed units = %d on a healthy fleet", got)
	}
}

// TestNodeDeathMovesCounters kills one of three workers mid-campaign and
// expects the death and re-home counters to move with the failover.
func TestNodeDeathMovesCounters(t *testing.T) {
	// Nine seeds: enough work that the killed node is still busy when the
	// connections drop, so the death is observed rather than raced past.
	camp := parseCampaign(t, strings.Replace(campaignDoc, `"seeds": 3`, `"seeds": 9`, 1))
	_, https, urls := startWorkers(t, 3, serve.Config{Workers: 2})

	reg := obs.NewRegistry()
	var kill sync.Once
	res, err := Run(context.Background(), camp, urls, Options{
		Metrics: reg,
		Progress: func(done, total int, rec sweep.Record) {
			if done == 3 {
				kill.Do(func() {
					go func() {
						https[0].CloseClientConnections()
						https[0].Close()
					}()
				})
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("no records survived the node death")
	}
	if got := reg.Counter("dispatch_node_deaths_total", "").Value(); got != 1 {
		t.Fatalf("node deaths = %d, want 1", got)
	}
}
