package dispatch

import (
	"fmt"
	"time"

	"wardrop/internal/obs"
)

// metrics is the coordinator's instrument bundle. Instruments always exist —
// with no Options.Metrics registry supplied they land in a private one — so
// the scheduling paths stay branch-free.
type metrics struct {
	reg *obs.Registry

	retries, deaths, rehomed, steals *obs.Counter
	// inflight is one gauge per node, labelled with the worker URL.
	inflight []*obs.Gauge
	// queueWaitMs is enqueue→dequeue per task unit; transportMs the remote
	// round-trip (queue wait on the worker included) per attempt.
	queueWaitMs, transportMs *obs.Histogram
}

func newDispatchMetrics(reg *obs.Registry, workers []string) *metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &metrics{
		reg:         reg,
		retries:     reg.Counter("dispatch_retries_total", "transient rejections retried with backoff"),
		deaths:      reg.Counter("dispatch_node_deaths_total", "workers declared dead"),
		rehomed:     reg.Counter("dispatch_rehomed_total", "task units re-homed off dead workers"),
		steals:      reg.Counter("dispatch_steals_total", "task units stolen by idle workers"),
		queueWaitMs: reg.Histogram("dispatch_queue_wait_ms", "task-unit wait from enqueue to dequeue, milliseconds", nil),
		transportMs: reg.Histogram("dispatch_transport_ms", "remote task round-trip, milliseconds", nil),
		inflight:    make([]*obs.Gauge, len(workers)),
	}
	for i, w := range workers {
		m.inflight[i] = reg.Gauge(
			fmt.Sprintf("dispatch_inflight{node=%q}", w),
			"task units in flight on this worker")
	}
	return m
}

// ms converts a duration to float64 milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
