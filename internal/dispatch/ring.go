package dispatch

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// vnodes is the number of virtual points each worker contributes to the
// ring. 64 points per node keeps the assignment imbalance of a handful of
// workers within a few percent while the ring stays tiny.
const vnodes = 64

// ring is a consistent-hash ring over the worker list: task fingerprints map
// to workers such that (a) the same fingerprint always lands on the same
// worker while the fleet is stable — which is what keeps each node's result
// cache and instance cache hot across campaigns — and (b) when a worker
// dies, only its own keys move, scattering evenly over the survivors instead
// of reshuffling the whole assignment.
type ring struct {
	hashes []uint64 // sorted virtual-point hashes
	nodes  []int    // nodes[i] owns hashes[i]; index into the worker list
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// newRing builds the ring over worker identities (their URLs, so the
// assignment is a function of the fleet, not of argument order plus count).
func newRing(workers []string) *ring {
	r := &ring{
		hashes: make([]uint64, 0, len(workers)*vnodes),
		nodes:  make([]int, 0, len(workers)*vnodes),
	}
	type point struct {
		hash uint64
		node int
	}
	points := make([]point, 0, len(workers)*vnodes)
	for i, w := range workers {
		for v := 0; v < vnodes; v++ {
			points = append(points, point{hash64(w + "#" + strconv.Itoa(v)), i})
		}
	}
	sort.Slice(points, func(a, b int) bool {
		if points[a].hash != points[b].hash {
			return points[a].hash < points[b].hash
		}
		return points[a].node < points[b].node
	})
	for _, p := range points {
		r.hashes = append(r.hashes, p.hash)
		r.nodes = append(r.nodes, p.node)
	}
	return r
}

// owner maps a key to the first alive worker at or after the key's point,
// walking clockwise past dead nodes. Returns -1 when no worker is alive.
func (r *ring) owner(key string, alive []bool) int {
	if len(r.hashes) == 0 {
		return -1
	}
	h := hash64(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	for i := 0; i < len(r.hashes); i++ {
		n := r.nodes[(start+i)%len(r.hashes)]
		if alive[n] {
			return n
		}
	}
	return -1
}
