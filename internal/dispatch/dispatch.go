// Package dispatch is the campaign coordinator for distributed sweeps: it
// expands a campaign exactly as a local sweep.Run would, shards the deduped
// tasks across a fleet of wardserve workers by consistent hashing on task
// fingerprint (so identical cells keep landing on the same node and its
// caches stay hot), executes them over POST /v1/tasks, and merges the
// returned records into the same RunResult a local run produces. Nodes that
// stop answering are declared dead and their tasks re-queued onto the
// survivors; idle nodes steal queued work from loaded ones; transient
// queue-full rejections are retried with backoff honouring Retry-After.
// Because remote workers return canonical records and the coordinator
// rebinds the bookkeeping identity per task, the merged artifacts are
// byte-identical to a local run — including under mid-campaign worker
// failure.
package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"wardrop/internal/obs"
	"wardrop/internal/sweep"
)

// EventKind labels a coordinator lifecycle event.
type EventKind string

// Coordinator events: a worker declared dead (its queued tasks re-homed), a
// transient rejection retried with backoff, a steal by an idle worker.
const (
	EventNodeDead EventKind = "node-dead"
	EventRetry    EventKind = "retry"
	EventSteal    EventKind = "steal"
)

// Event is one coordinator lifecycle observation, for logging and tests.
type Event struct {
	Kind EventKind
	// Node is the worker URL the event concerns; From is the steal victim.
	Node string
	From string
	// Tasks counts the task units a node-dead event re-homed.
	Tasks int
	// Attempt is the retry ordinal of a retry event.
	Attempt int
	Err     error
}

// Options configures a distributed run. The zero value is usable.
type Options struct {
	// Client performs the HTTP requests (default: a fresh client with no
	// timeout — task duration is unbounded and cancellation comes from ctx).
	Client *http.Client
	// Inflight is the number of concurrent tasks per worker (default 4).
	Inflight int
	// MaxAttempts bounds the attempts per task across retries and node
	// failures (default 3); a task out of attempts gets an error record, the
	// campaign keeps going.
	MaxAttempts int
	// Backoff is the base retry backoff, doubled per attempt (default 250ms);
	// a server Retry-After wins when longer.
	Backoff time.Duration
	// Results, Canonical, Progress: as sweep.Options — a streaming JSONL
	// sink (completion order), the canonical-form switch for that stream,
	// and the per-record progress callback.
	Results   io.Writer
	Canonical bool
	Progress  func(done, total int, rec sweep.Record)
	// Events, if non-nil, observes coordinator lifecycle events. Called from
	// worker goroutines; must be safe for concurrent use.
	Events func(Event)
	// Metrics, when non-nil, receives the coordinator's instruments:
	// per-node in-flight gauges, retry/death/re-home/steal counters, and
	// queue-wait and transport histograms. Share the registry with a serve
	// or sweep layer to expose everything through one endpoint.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.Inflight <= 0 {
		o.Inflight = 4
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = 250 * time.Millisecond
	}
	return o
}

// unit is one dedup class of tasks: a self-contained spec submitted (at most
// a few times) to remote workers, and every expanded task whose record is
// bound from the one remote result.
type unit struct {
	fp       string
	spec     *sweep.TaskSpec
	body     []byte
	tasks    []sweep.Task
	attempts int
	// enqueuedAt is when the unit last landed on a node queue; the
	// dequeue-side delta is the queue-wait metric.
	enqueuedAt time.Time
}

// Run executes the campaign across the worker fleet and returns the same
// RunResult a local sweep.Run produces: every expanded task gets a record
// (duplicates cloned from their representative, identity rebound), sorted by
// task ID. Task-level failures come back inside records; the returned error
// is non-nil only for invalid campaigns, cancellation, a failing Results
// sink, or a fleet with no surviving workers. On cancellation the records
// completed so far are returned with ctx.Err(), and the in-flight remote
// jobs are cancelled too (the request contexts propagate).
func Run(ctx context.Context, camp *sweep.Campaign, workers []string, opts Options) (*sweep.RunResult, error) {
	if len(workers) == 0 {
		return nil, errors.New("dispatch: no workers")
	}
	urls := make([]string, len(workers))
	for i, w := range workers {
		urls[i] = strings.TrimRight(w, "/")
	}
	tasks, err := camp.Expand()
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	units, err := buildUnits(camp, tasks)
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	co := newCoordinator(ctx, urls, units, opts)
	co.start()

	// Collect, mirroring the local collector: stream JSONL in completion
	// order, report progress, keep everything, sort by ID at the end.
	records := make([]sweep.Record, 0, len(tasks))
	enc := json.NewEncoder(io.Discard)
	if opts.Results != nil {
		enc = json.NewEncoder(opts.Results)
	}
	var sinkErr error
	for rec := range co.recCh {
		if sinkErr == nil {
			line := rec
			if opts.Canonical {
				line = sweep.CanonicalRecord(rec)
			}
			if err := enc.Encode(line); err != nil {
				sinkErr = fmt.Errorf("dispatch: results sink: %w", err)
				cancel()
			}
		}
		records = append(records, rec)
		if opts.Progress != nil {
			opts.Progress(len(records), len(tasks), rec)
		}
	}
	sort.Slice(records, func(i, j int) bool { return records[i].ID < records[j].ID })
	result := &sweep.RunResult{Campaign: camp, Tasks: tasks, Records: records}
	if sinkErr != nil {
		return nil, sinkErr
	}
	if err := ctx.Err(); err != nil {
		return result, err
	}
	if err := co.terminalErr(); err != nil {
		return result, err
	}
	return result, nil
}

// buildUnits groups the expanded tasks by TaskSpec fingerprint in
// first-occurrence order — the same dedup partition the local executor uses
// (within one campaign the two fingerprints induce identical classes), keyed
// by the durable identity remote caches understand.
func buildUnits(camp *sweep.Campaign, tasks []sweep.Task) ([]*unit, error) {
	units := make([]*unit, 0, len(tasks))
	index := make(map[string]int, len(tasks))
	for _, t := range tasks {
		spec := sweep.NewTaskSpec(camp, t)
		fp, err := spec.Fingerprint()
		if err != nil {
			return nil, fmt.Errorf("dispatch: task %d: %w", t.ID, err)
		}
		if i, ok := index[fp]; ok {
			units[i].tasks = append(units[i].tasks, t)
			continue
		}
		body, err := json.Marshal(spec)
		if err != nil {
			return nil, fmt.Errorf("dispatch: task %d: %w", t.ID, err)
		}
		index[fp] = len(units)
		units = append(units, &unit{fp: fp, spec: spec, body: body, tasks: []sweep.Task{t}})
	}
	return units, nil
}

// coordinator is the shared scheduling state: per-node queues under one
// mutex+cond, the liveness view, and the record channel the collector
// drains. Runners (Inflight goroutines per node) pull from their own queue,
// steal from the longest other queue when idle, and exit when the work or
// the fleet is exhausted.
type coordinator struct {
	ctx     context.Context
	workers []string
	ring    *ring
	opts    Options
	met     *metrics
	recCh   chan sweep.Record

	mu        sync.Mutex
	cond      *sync.Cond
	queues    [][]*unit
	alive     []bool
	aliveN    int
	pending   int // units not yet completed (queued or in flight)
	cancelled bool
	err       error // terminal: every worker dead
}

func newCoordinator(ctx context.Context, workers []string, units []*unit, opts Options) *coordinator {
	co := &coordinator{
		ctx:     ctx,
		workers: workers,
		ring:    newRing(workers),
		opts:    opts,
		met:     newDispatchMetrics(opts.Metrics, workers),
		recCh:   make(chan sweep.Record, 2*len(workers)*opts.Inflight),
		queues:  make([][]*unit, len(workers)),
		alive:   make([]bool, len(workers)),
		aliveN:  len(workers),
		pending: len(units),
	}
	co.cond = sync.NewCond(&co.mu)
	for i := range co.alive {
		co.alive[i] = true
	}
	now := time.Now()
	for _, u := range units {
		u.enqueuedAt = now
		home := co.ring.owner(u.fp, co.alive)
		co.queues[home] = append(co.queues[home], u)
	}
	return co
}

func (co *coordinator) start() {
	var wg sync.WaitGroup
	for node := range co.workers {
		for k := 0; k < co.opts.Inflight; k++ {
			wg.Add(1)
			go func(node int) {
				defer wg.Done()
				co.runner(node)
			}(node)
		}
	}
	// Cancellation wakes every waiting runner so the pool drains promptly
	// even when no task completion would otherwise signal the cond.
	go func() {
		<-co.ctx.Done()
		co.mu.Lock()
		co.cancelled = true
		co.cond.Broadcast()
		co.mu.Unlock()
	}()
	go func() {
		wg.Wait()
		close(co.recCh)
	}()
}

func (co *coordinator) terminalErr() error {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.err
}

func (co *coordinator) event(ev Event) {
	if co.opts.Events != nil {
		co.opts.Events(ev)
	}
}

// next blocks until there is a unit for this node to run — its own queue
// first, then a steal from the longest other alive queue — or until the run
// is over for it (done, cancelled, fleet dead, or this node declared dead).
func (co *coordinator) next(node int) *unit {
	co.mu.Lock()
	for {
		if co.cancelled || co.err != nil || co.pending == 0 || !co.alive[node] {
			co.mu.Unlock()
			return nil
		}
		if q := co.queues[node]; len(q) > 0 {
			u := q[0]
			co.queues[node] = q[1:]
			co.mu.Unlock()
			co.met.queueWaitMs.Observe(ms(time.Since(u.enqueuedAt)))
			return u
		}
		if victim := co.longestQueue(node); victim >= 0 {
			q := co.queues[victim]
			u := q[len(q)-1] // steal from the tail: the coldest queued work
			co.queues[victim] = q[:len(q)-1]
			co.mu.Unlock()
			co.met.steals.Inc()
			co.met.queueWaitMs.Observe(ms(time.Since(u.enqueuedAt)))
			co.event(Event{Kind: EventSteal, Node: co.workers[node], From: co.workers[victim]})
			return u
		}
		co.cond.Wait()
	}
}

// longestQueue returns the alive node (≠ self) with the longest non-empty
// queue, or -1. Callers hold co.mu.
func (co *coordinator) longestQueue(self int) int {
	best, bestLen := -1, 0
	for i, q := range co.queues {
		if i != self && co.alive[i] && len(q) > bestLen {
			best, bestLen = i, len(q)
		}
	}
	return best
}

// requeue re-homes a unit onto the surviving fleet (after a node death or a
// retry whose node died while backing off). With no survivors the unit is
// dropped: the coordinator error is already set and the run is over.
func (co *coordinator) requeue(u *unit) {
	co.mu.Lock()
	defer co.mu.Unlock()
	home := co.ring.owner(u.fp, co.alive)
	if home < 0 {
		return
	}
	u.enqueuedAt = time.Now()
	co.met.rehomed.Inc()
	co.queues[home] = append(co.queues[home], u)
	co.cond.Broadcast()
}

// markDead declares a node dead and re-homes its queue onto the survivors.
// Idempotent; the last death sets the coordinator's terminal error.
func (co *coordinator) markDead(node int, cause error) {
	co.mu.Lock()
	if !co.alive[node] {
		co.mu.Unlock()
		return
	}
	co.alive[node] = false
	co.aliveN--
	orphans := co.queues[node]
	co.queues[node] = nil
	moved := len(orphans)
	if co.aliveN == 0 {
		co.err = fmt.Errorf("dispatch: all workers failed (last: %s): %w", co.workers[node], cause)
	} else {
		now := time.Now()
		for _, u := range orphans {
			u.enqueuedAt = now
			home := co.ring.owner(u.fp, co.alive)
			co.queues[home] = append(co.queues[home], u)
		}
	}
	co.cond.Broadcast()
	co.mu.Unlock()
	co.met.deaths.Inc()
	co.met.rehomed.Add(int64(moved))
	co.event(Event{Kind: EventNodeDead, Node: co.workers[node], Tasks: moved, Err: cause})
}

// complete binds the remote record onto every task of the unit (the spec
// carries no bookkeeping identity — ID and SeedIndex are rebound here, the
// exact clone semantics of the local dedup pass) and hands the records to
// the collector.
func (co *coordinator) complete(u *unit, rec sweep.Record) {
	for _, t := range u.tasks {
		bound := rec
		bound.ID, bound.SeedIndex = t.ID, t.SeedIndex
		co.recCh <- bound
	}
	co.mu.Lock()
	co.pending--
	if co.pending == 0 {
		co.cond.Broadcast()
	}
	co.mu.Unlock()
}

func (co *coordinator) runner(node int) {
	for {
		u := co.next(node)
		if u == nil {
			return
		}
		co.met.inflight[node].Add(1)
		co.run(node, u)
		co.met.inflight[node].Add(-1)
	}
}

// attempt verdicts.
type verdict int

const (
	vOK verdict = iota
	vCancelled
	vRetry    // transient rejection (queue full): back off, same node
	vNodeDead // the node is gone or answering garbage
	vTaskFail // deterministic rejection: record the error, do not retry
)

// run drives one unit to completion on this node: attempt, classify, retry
// with backoff, fail over on node death, give up into an error record when
// out of attempts.
func (co *coordinator) run(node int, u *unit) {
	for {
		rec, retryAfter, verd, err := co.attempt(node, u)
		switch verd {
		case vOK:
			co.complete(u, rec)
			return
		case vCancelled:
			return
		case vTaskFail:
			co.complete(u, u.spec.ErrorRecord(err))
			return
		case vRetry:
			u.attempts++
			if u.attempts >= co.opts.MaxAttempts {
				co.complete(u, u.spec.ErrorRecord(err))
				return
			}
			co.met.retries.Inc()
			co.event(Event{Kind: EventRetry, Node: co.workers[node], Attempt: u.attempts, Err: err})
			if !co.sleep(backoff(co.opts.Backoff, u.attempts, retryAfter)) {
				return
			}
			co.mu.Lock()
			stillAlive := co.alive[node]
			co.mu.Unlock()
			if !stillAlive {
				co.requeue(u)
				return
			}
		case vNodeDead:
			co.markDead(node, err)
			u.attempts++
			if u.attempts >= co.opts.MaxAttempts {
				co.complete(u, u.spec.ErrorRecord(err))
				return
			}
			co.requeue(u)
			return
		}
	}
}

// sleep waits d, honouring cancellation; reports whether the wait ran full.
func (co *coordinator) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-co.ctx.Done():
		return false
	}
}

// backoff is the exponential schedule, floored by the server's Retry-After.
func backoff(base time.Duration, attempt int, retryAfter time.Duration) time.Duration {
	d := base << (attempt - 1)
	if retryAfter > d {
		return retryAfter
	}
	return d
}

// attempt submits the unit's spec to the node once and classifies the
// outcome. A 200 is the task's record — possibly one carrying a task-level
// error, which is a completed outcome, not a failure. A 503 with Retry-After
// is the node shedding load (retry here, later); any other failure mode —
// transport errors, draining, 5xx, an unparseable body — condemns the node.
func (co *coordinator) attempt(node int, u *unit) (rec sweep.Record, retryAfter time.Duration, verd verdict, err error) {
	req, err := http.NewRequestWithContext(co.ctx, http.MethodPost, co.workers[node]+"/v1/tasks", bytes.NewReader(u.body))
	if err != nil {
		return rec, 0, vTaskFail, err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := co.opts.Client.Do(req)
	if err != nil {
		co.met.transportMs.Observe(ms(time.Since(start)))
		if co.ctx.Err() != nil {
			return rec, 0, vCancelled, co.ctx.Err()
		}
		return rec, 0, vNodeDead, err
	}
	body, readErr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	co.met.transportMs.Observe(ms(time.Since(start)))
	if readErr != nil {
		if co.ctx.Err() != nil {
			return rec, 0, vCancelled, co.ctx.Err()
		}
		return rec, 0, vNodeDead, readErr
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		if err := json.Unmarshal(body, &rec); err != nil {
			return rec, 0, vNodeDead, fmt.Errorf("%s: bad record: %w", co.workers[node], err)
		}
		// Wall time is the coordinator's measurement: request round-trip,
		// queue wait included — exactly the straggler signal a fleet
		// operator wants. The canonical artifacts strip it either way.
		rec.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
		return rec, 0, vOK, nil
	case resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != "":
		if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
		return rec, retryAfter, vRetry, fmt.Errorf("%s: %s", co.workers[node], strings.TrimSpace(string(body)))
	case resp.StatusCode == http.StatusBadRequest:
		// Cannot happen for coordinator-built specs; recorded, not retried.
		return rec, 0, vTaskFail, fmt.Errorf("%s: %s", co.workers[node], strings.TrimSpace(string(body)))
	default:
		return rec, 0, vNodeDead, fmt.Errorf("%s: status %d: %s", co.workers[node], resp.StatusCode, strings.TrimSpace(string(body)))
	}
}
