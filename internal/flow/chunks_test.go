package flow

import "testing"

// balanceChunks must always produce a valid partition: parts+1
// nondecreasing boundaries from 0 to the row count, regardless of weight
// skew or parts exceeding rows — the parallel phases index chunks blindly.
func TestBalanceChunksPartitions(t *testing.T) {
	cases := []struct {
		name   string
		starts []int32
		parts  int
	}{
		{"uniform", []int32{0, 2, 4, 6, 8, 10, 12, 14, 16}, 4},
		{"skewed-front", []int32{0, 100, 101, 102, 103, 104}, 3},
		{"skewed-back", []int32{0, 1, 2, 3, 4, 200}, 3},
		{"one-row", []int32{0, 7}, 4},
		{"more-parts-than-rows", []int32{0, 1, 2, 3}, 8},
		{"single-part", []int32{0, 5, 9}, 1},
		{"all-empty-rows", []int32{0, 0, 0, 0}, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			n := len(c.starts) - 1
			bounds := balanceChunks(c.starts, c.parts)
			if len(bounds) != c.parts+1 {
				t.Fatalf("len(bounds) = %d, want %d", len(bounds), c.parts+1)
			}
			if bounds[0] != 0 || bounds[c.parts] != int32(n) {
				t.Fatalf("bounds endpoints %d..%d, want 0..%d", bounds[0], bounds[c.parts], n)
			}
			for i := 0; i < c.parts; i++ {
				if bounds[i] > bounds[i+1] {
					t.Fatalf("bounds not nondecreasing: %v", bounds)
				}
			}
		})
	}
}
