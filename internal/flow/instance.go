// Package flow defines Wardrop routing instances (graph + latency functions +
// commodities with enumerated path sets), feasible flow vectors over paths,
// and the measurements the paper's analysis is built on: edge/path latencies,
// the Beckmann–McGuire–Winsten potential, per-commodity minimum and average
// latencies, and the (δ,ε)- and weak (δ,ε)-equilibrium metrics of §5.
//
// Two evaluation paths compute those measurements: the naive per-method
// reference implementation (EdgeFlows, EdgeLatencies,
// PathLatenciesFromEdges, PotentialFromEdges — the differential-testing
// oracle) and the compiled kernel (kernel.go: CSR incidence, Evaluator,
// Workspace) every simulation engine runs on, which produces bit-identical
// values with batch latency kernels, zero steady-state allocation and
// incremental updates after sparse flow moves.
package flow

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"wardrop/internal/graph"
	"wardrop/internal/latency"
)

// Sentinel errors for instance construction and flow validation.
var (
	// ErrLatencyCount indicates the latency slice does not match the edge count.
	ErrLatencyCount = errors.New("flow: latency function count != edge count")
	// ErrBadDemand indicates a non-positive commodity demand.
	ErrBadDemand = errors.New("flow: commodity demand must be positive")
	// ErrNoCommodities indicates an instance without commodities.
	ErrNoCommodities = errors.New("flow: instance needs at least one commodity")
	// ErrDimension indicates a flow vector of the wrong length.
	ErrDimension = errors.New("flow: vector has wrong dimension")
	// ErrNegativeFlow indicates a negative path flow.
	ErrNegativeFlow = errors.New("flow: negative path flow")
	// ErrDemandMismatch indicates commodity path flows not summing to demand.
	ErrDemandMismatch = errors.New("flow: path flows do not sum to demand")
)

// Commodity is a demand of Demand flow units to route from Source to Sink.
type Commodity struct {
	Name   string
	Source graph.NodeID
	Sink   graph.NodeID
	Demand float64
}

// Instance is an immutable Wardrop routing instance: a network with latency
// functions and commodities whose strategy spaces are the enumerated simple
// paths between their terminals. Build with NewInstance; safe for concurrent
// reads afterwards.
type Instance struct {
	g           *graph.Graph
	latencies   []latency.Function
	commodities []Commodity

	paths      [][]graph.Path // per commodity
	offsets    []int          // offsets[i] = global index of commodity i's first path
	totalPaths int
	maxPathLen int

	lmax     float64
	maxSlope float64

	// Compiled evaluation kernel (kernel.go), built on first use; the once
	// keeps lazy compilation safe under the instance's concurrent-reads
	// contract.
	kernOnce sync.Once
	kernInc  *incidence
	kernProg *latency.Program
}

// Option configures instance construction.
type Option func(*options)

type options struct {
	maxPathLen int
	kPaths     int
}

// WithMaxPathLen bounds path enumeration to paths of at most n edges.
// n <= 0 (the default) enumerates all simple paths.
func WithMaxPathLen(n int) Option {
	return func(o *options) { o.maxPathLen = n }
}

// WithKShortestPaths restricts each commodity's strategy space to its k
// cheapest loopless paths (Yen's algorithm) under the free-flow latencies
// ℓ_e(0), with a tiny per-edge penalty breaking zero-latency ties towards
// fewer hops. Use this instead of full enumeration on graphs whose simple-
// path count explodes. k <= 0 (the default) enumerates all simple paths.
func WithKShortestPaths(k int) Option {
	return func(o *options) { o.kPaths = k }
}

// NewInstance validates the inputs, enumerates every commodity's path set and
// precomputes the instance invariants D (max path length), β (max latency
// slope) and ℓmax (max zero-excess path latency Σ_{e∈P} ℓ_e(1)).
func NewInstance(g *graph.Graph, lats []latency.Function, comms []Commodity, opts ...Option) (*Instance, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("flow: %w", err)
	}
	if len(lats) != g.NumEdges() {
		return nil, fmt.Errorf("%w: %d functions for %d edges", ErrLatencyCount, len(lats), g.NumEdges())
	}
	if len(comms) == 0 {
		return nil, ErrNoCommodities
	}
	inst := &Instance{
		g:           g,
		latencies:   append([]latency.Function(nil), lats...),
		commodities: append([]Commodity(nil), comms...),
		offsets:     make([]int, len(comms)+1),
	}
	for i, c := range comms {
		if c.Demand <= 0 || math.IsNaN(c.Demand) || math.IsInf(c.Demand, 0) {
			return nil, fmt.Errorf("%w: commodity %d demand %g", ErrBadDemand, i, c.Demand)
		}
		var paths []graph.Path
		var err error
		if o.kPaths > 0 {
			freeFlow := func(e graph.EdgeID) float64 { return lats[e].Value(0) + 1e-9 }
			paths, err = g.KShortestPaths(c.Source, c.Sink, o.kPaths, freeFlow)
		} else {
			paths, err = g.EnumeratePaths(c.Source, c.Sink, o.maxPathLen)
		}
		if err != nil {
			return nil, fmt.Errorf("flow: commodity %d: %w", i, err)
		}
		inst.paths = append(inst.paths, paths)
		inst.offsets[i] = inst.totalPaths
		inst.totalPaths += len(paths)
		for _, p := range paths {
			if p.Len() > inst.maxPathLen {
				inst.maxPathLen = p.Len()
			}
		}
	}
	inst.offsets[len(comms)] = inst.totalPaths

	for _, paths := range inst.paths {
		for _, p := range paths {
			sum := 0.0
			for _, e := range p.Edges {
				sum += lats[e].Value(1)
			}
			inst.lmax = math.Max(inst.lmax, sum)
		}
	}
	for _, f := range lats {
		inst.maxSlope = math.Max(inst.maxSlope, f.SlopeBound())
	}
	return inst, nil
}

// Graph returns the underlying network.
func (in *Instance) Graph() *graph.Graph { return in.g }

// Latency returns edge e's latency function.
func (in *Instance) Latency(e graph.EdgeID) latency.Function { return in.latencies[e] }

// NumCommodities reports the number of commodities.
func (in *Instance) NumCommodities() int { return len(in.commodities) }

// Commodity returns commodity i.
func (in *Instance) Commodity(i int) Commodity { return in.commodities[i] }

// NumPaths reports the total number of paths across all commodities (the
// dimension of flow vectors).
func (in *Instance) NumPaths() int { return in.totalPaths }

// NumCommodityPaths reports |P_i| for commodity i.
func (in *Instance) NumCommodityPaths(i int) int { return len(in.paths[i]) }

// Paths returns commodity i's path set. The slice is owned by the instance
// and must not be modified.
func (in *Instance) Paths(i int) []graph.Path { return in.paths[i] }

// GlobalIndex maps (commodity, local path index) to the flow-vector index.
func (in *Instance) GlobalIndex(commodity, local int) int {
	return in.offsets[commodity] + local
}

// CommodityRange returns the half-open global index range [lo, hi) of
// commodity i's paths.
func (in *Instance) CommodityRange(i int) (lo, hi int) {
	return in.offsets[i], in.offsets[i+1]
}

// CommodityOf returns the commodity owning global path index g.
func (in *Instance) CommodityOf(g int) int {
	// Linear scan is fine: commodity counts are small; callers in hot loops
	// iterate per commodity anyway.
	for i := 0; i+1 < len(in.offsets); i++ {
		if g < in.offsets[i+1] {
			return i
		}
	}
	return len(in.commodities) - 1
}

// Path returns the path at global index g.
func (in *Instance) Path(g int) graph.Path {
	i := in.CommodityOf(g)
	return in.paths[i][g-in.offsets[i]]
}

// MaxPathLen returns D, the maximum number of edges of any enumerated path.
func (in *Instance) MaxPathLen() int { return in.maxPathLen }

// MaxSlope returns β, the maximum slope bound of any edge latency function.
func (in *Instance) MaxSlope() float64 { return in.maxSlope }

// LMax returns ℓmax, the paper's upper bound on any path latency:
// max_P Σ_{e∈P} ℓ_e(1).
func (in *Instance) LMax() float64 { return in.lmax }

// TotalDemand returns Σ_i r_i.
func (in *Instance) TotalDemand() float64 {
	sum := 0.0
	for _, c := range in.commodities {
		sum += c.Demand
	}
	return sum
}
