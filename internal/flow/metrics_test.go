package flow

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEdgeFlowsAndLatenciesPigou(t *testing.T) {
	inst := pigou(t)
	f := Vector{0.25, 0.75}
	fe := inst.EdgeFlows(f, nil)
	if !approx(fe[0], 0.25, 1e-15) || !approx(fe[1], 0.75, 1e-15) {
		t.Fatalf("edge flows = %v", fe)
	}
	le := inst.EdgeLatencies(fe, nil)
	if !approx(le[0], 0.25, 1e-15) || !approx(le[1], 1, 1e-15) {
		t.Fatalf("edge latencies = %v", le)
	}
	pl := inst.PathLatenciesFromEdges(le, nil)
	if !approx(pl[0], 0.25, 1e-15) || !approx(pl[1], 1, 1e-15) {
		t.Fatalf("path latencies = %v", pl)
	}
}

func TestEdgeFlowsBufferReuse(t *testing.T) {
	inst := pigou(t)
	buf := make([]float64, 2)
	buf[0] = 42 // stale content must be cleared
	fe := inst.EdgeFlows(Vector{1, 0}, buf)
	if &fe[0] != &buf[0] {
		t.Error("buffer not reused")
	}
	if !approx(fe[0], 1, 1e-15) || fe[1] != 0 {
		t.Errorf("edge flows = %v", fe)
	}
}

func TestEdgeFlowsSharedEdgeAcrossCommodities(t *testing.T) {
	inst := twoCommodity(t)
	// c0 has paths [e0,e1] (idx 0) and [e2] (idx 1); c1 path [e1] (idx 2).
	f := Vector{0.6, 0, 0.4}
	fe := inst.EdgeFlows(f, nil)
	if !approx(fe[1], 1.0, 1e-15) { // e1 carries both commodities
		t.Errorf("shared edge flow = %g, want 1", fe[1])
	}
}

func TestPotentialPigou(t *testing.T) {
	inst := pigou(t)
	// Φ(x on link1) = x²/2 + (1−x). Equilibrium at x=1: Φ=0.5.
	for _, x := range []float64{0, 0.3, 0.5, 1} {
		want := x*x/2 + (1 - x)
		got := inst.Potential(Vector{x, 1 - x})
		if !approx(got, want, 1e-12) {
			t.Errorf("Φ(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestMinAvgMaxLatency(t *testing.T) {
	inst := pigou(t)
	f := Vector{0.5, 0.5}
	pl := inst.PathLatencies(f)
	idx, lmin := inst.MinLatency(0, pl)
	if idx != 0 || !approx(lmin, 0.5, 1e-15) {
		t.Errorf("MinLatency = %d,%g", idx, lmin)
	}
	li := inst.AvgLatency(0, f, pl)
	if !approx(li, 0.75, 1e-15) {
		t.Errorf("AvgLatency = %g, want 0.75", li)
	}
	l := inst.OverallAvgLatency(f, pl)
	if !approx(l, 0.75, 1e-15) {
		t.Errorf("OverallAvgLatency = %g", l)
	}
	if m := inst.MaxUsedLatency(f, pl, 1e-12); !approx(m, 1, 1e-15) {
		t.Errorf("MaxUsedLatency = %g", m)
	}
	// With no flow on the constant link its latency must not count.
	if m := inst.MaxUsedLatency(Vector{1, 0}, inst.PathLatencies(Vector{1, 0}), 1e-12); !approx(m, 1, 1e-15) {
		t.Errorf("MaxUsedLatency = %g", m)
	}
}

func TestUnsatisfiedVolumes(t *testing.T) {
	inst := pigou(t)
	f := Vector{0.5, 0.5}
	pl := inst.PathLatencies(f) // 0.5 and 1.0; min 0.5, avg 0.75
	if v := inst.UnsatisfiedVolume(f, pl, 0.4); !approx(v, 0.5, 1e-15) {
		t.Errorf("UnsatisfiedVolume(0.4) = %g, want 0.5", v)
	}
	if v := inst.UnsatisfiedVolume(f, pl, 0.6); v != 0 {
		t.Errorf("UnsatisfiedVolume(0.6) = %g, want 0", v)
	}
	if v := inst.WeakUnsatisfiedVolume(f, pl, 0.2); !approx(v, 0.5, 1e-15) {
		t.Errorf("WeakUnsatisfiedVolume(0.2) = %g, want 0.5", v)
	}
	if v := inst.WeakUnsatisfiedVolume(f, pl, 0.3); v != 0 {
		t.Errorf("WeakUnsatisfiedVolume(0.3) = %g, want 0", v)
	}
	if !inst.AtApproxEquilibrium(f, pl, 0.6, 0.1) {
		t.Error("should be (0.6,0.1)-equilibrium")
	}
	if inst.AtApproxEquilibrium(f, pl, 0.4, 0.1) {
		t.Error("should not be (0.4,0.1)-equilibrium")
	}
	if !inst.AtWeakApproxEquilibrium(f, pl, 0.3, 0.0) {
		t.Error("should be weak (0.3,0)-equilibrium")
	}
}

func TestEveryStrictEquilibriumIsWeak(t *testing.T) {
	// Property from the paper: every (δ,ε)-equilibrium is a weak one, because
	// L_i >= ℓ^i_min pointwise.
	inst := braess(t)
	prop := func(a, b, c uint16) bool {
		x := float64(a%1000) + 1
		y := float64(b%1000) + 1
		z := float64(c%1000) + 1
		s := x + y + z
		f := Vector{x / s, y / s, z / s}
		pl := inst.PathLatencies(f)
		delta := 0.2
		strict := inst.UnsatisfiedVolume(f, pl, delta)
		weak := inst.WeakUnsatisfiedVolume(f, pl, delta)
		return weak <= strict+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAtWardropEquilibrium(t *testing.T) {
	inst := pigou(t)
	if !inst.AtWardropEquilibrium(Vector{1, 0}, 1e-9) {
		t.Error("all flow on the x-link is the Pigou equilibrium")
	}
	if inst.AtWardropEquilibrium(Vector{0.5, 0.5}, 1e-9) {
		t.Error("split flow is not a Pigou equilibrium")
	}
	// Braess equilibrium: everything through the bridge path s->a->b->t.
	binst := braess(t)
	var bridgeIdx = -1
	for g := 0; g < binst.NumPaths(); g++ {
		if binst.Path(g).Len() == 3 {
			bridgeIdx = g
		}
	}
	f := make(Vector, 3)
	f[bridgeIdx] = 1
	if !binst.AtWardropEquilibrium(f, 1e-9) {
		t.Error("all-bridge flow should be the Braess equilibrium")
	}
}

func TestBestResponse(t *testing.T) {
	inst := pigou(t)
	pl := inst.PathLatencies(Vector{0.2, 0.8}) // lat 0.2 vs 1 -> path 0
	b := inst.BestResponse(pl)
	if !approx(b[0], 1, 1e-15) || b[1] != 0 {
		t.Errorf("BestResponse = %v", b)
	}
	// Tie: lowest index wins.
	pl2 := []float64{1, 1}
	b2 := inst.BestResponse(pl2)
	if !approx(b2[0], 1, 1e-15) {
		t.Errorf("tie-break BestResponse = %v", b2)
	}
}

func TestVirtualGainAndErrorTermsLemma3(t *testing.T) {
	// Lemma 3: Φ(f) − Φ(f̂) = Σ_e U_e + V(f̂,f).
	inst := braess(t)
	prop := func(a, b, c, d, e, g uint16) bool {
		mk := func(x, y, z uint16) Vector {
			fx := float64(x%997) + 1
			fy := float64(y%997) + 1
			fz := float64(z%997) + 1
			s := fx + fy + fz
			return Vector{fx / s, fy / s, fz / s}
		}
		fHat := mk(a, b, c)
		f := mk(d, e, g)
		lhs := inst.Potential(f) - inst.Potential(fHat)
		u := inst.ErrorTerms(fHat, f)
		sumU := 0.0
		for _, x := range u {
			sumU += x
		}
		rhs := sumU + inst.VirtualGain(fHat, f)
		return approx(lhs, rhs, 1e-10)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGapClamps(t *testing.T) {
	if Gap(1.0, 2.0) != 0 {
		t.Error("negative gap should clamp to 0")
	}
	if !approx(Gap(2.0, 0.5), 1.5, 1e-15) {
		t.Error("gap wrong")
	}
}

func TestPotentialLowerBound(t *testing.T) {
	if pigou(t).PotentialLowerBound() != 0 {
		t.Error("potential lower bound should be 0")
	}
}

func TestPathLatenciesAllocates(t *testing.T) {
	inst := pigou(t)
	pl := inst.PathLatencies(Vector{1, 0})
	if len(pl) != 2 || !approx(pl[0], 1, 1e-15) {
		t.Errorf("PathLatencies = %v", pl)
	}
}

var sinkPotential float64

func BenchmarkPotentialBraess(b *testing.B) {
	g := braessBench()
	f := g.UniformFlow()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkPotential = g.Potential(f)
	}
}

func braessBench() *Instance {
	// Benchmark helper without *testing.T.
	t := &testing.T{}
	return braess(t)
}

func TestOverallAvgMatchesWeightedCommodityAvg(t *testing.T) {
	inst := twoCommodity(t)
	f := Vector{0.3, 0.3, 0.4}
	pl := inst.PathLatencies(f)
	want := 0.6*inst.AvgLatency(0, f, pl) + 0.4*inst.AvgLatency(1, f, pl)
	if got := inst.OverallAvgLatency(f, pl); !approx(got, want, 1e-12) {
		t.Errorf("OverallAvgLatency = %g, want %g", got, want)
	}
}

func TestVirtualGainNegativeForImprovingMove(t *testing.T) {
	// Moving flow from the high-latency constant link to the cheaper x-link
	// (as seen on a fresh board) must yield negative virtual gain.
	inst := pigou(t)
	fHat := Vector{0.2, 0.8} // board: lat 0.2 vs 1
	f := Vector{0.4, 0.6}    // shift 0.2 towards the cheap link
	if v := inst.VirtualGain(fHat, f); v >= 0 {
		t.Errorf("VirtualGain = %g, want negative", v)
	}
}

func TestErrorTermsZeroWhenFlowUnchanged(t *testing.T) {
	inst := braess(t)
	f := inst.UniformFlow()
	for e, u := range inst.ErrorTerms(f, f) {
		if math.Abs(u) > 1e-15 {
			t.Errorf("U[%d] = %g, want 0", e, u)
		}
	}
}
