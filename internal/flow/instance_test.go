package flow

import (
	"errors"
	"math"
	"testing"

	"wardrop/internal/graph"
	"wardrop/internal/latency"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// pigou builds the two-parallel-link Pigou network: ℓ1(x)=x, ℓ2(x)=1.
func pigou(t *testing.T) *Instance {
	t.Helper()
	g := graph.New()
	s := g.MustAddNode("s")
	d := g.MustAddNode("t")
	g.MustAddEdge(s, d)
	g.MustAddEdge(s, d)
	inst, err := NewInstance(g,
		[]latency.Function{latency.Linear{Slope: 1}, latency.Constant{C: 1}},
		[]Commodity{{Source: s, Sink: d, Demand: 1}})
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return inst
}

// braess builds the classic Braess network with the bridge.
func braess(t *testing.T) *Instance {
	t.Helper()
	g := graph.New()
	s := g.MustAddNode("s")
	a := g.MustAddNode("a")
	b := g.MustAddNode("b")
	d := g.MustAddNode("t")
	eSA := g.MustAddEdge(s, a) // x
	eSB := g.MustAddEdge(s, b) // 1
	eAT := g.MustAddEdge(a, d) // 1
	eBT := g.MustAddEdge(b, d) // x
	eAB := g.MustAddEdge(a, b) // 0
	lats := make([]latency.Function, 5)
	lats[eSA] = latency.Linear{Slope: 1}
	lats[eSB] = latency.Constant{C: 1}
	lats[eAT] = latency.Constant{C: 1}
	lats[eBT] = latency.Linear{Slope: 1}
	lats[eAB] = latency.Constant{C: 0}
	inst, err := NewInstance(g, lats, []Commodity{{Source: s, Sink: d, Demand: 1}})
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return inst
}

// twoCommodity builds a 3-node network with two overlapping commodities.
func twoCommodity(t *testing.T) *Instance {
	t.Helper()
	g := graph.New()
	a := g.MustAddNode("a")
	b := g.MustAddNode("b")
	c := g.MustAddNode("c")
	g.MustAddEdge(a, b) // e0
	g.MustAddEdge(b, c) // e1
	g.MustAddEdge(a, c) // e2
	lats := []latency.Function{
		latency.Linear{Slope: 1},
		latency.Linear{Slope: 1},
		latency.Linear{Slope: 2, Offset: 0.1},
	}
	inst, err := NewInstance(g, lats, []Commodity{
		{Source: a, Sink: c, Demand: 0.6},
		{Source: b, Sink: c, Demand: 0.4},
	})
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return inst
}

func TestNewInstanceBasics(t *testing.T) {
	inst := pigou(t)
	if inst.NumCommodities() != 1 || inst.NumPaths() != 2 {
		t.Fatalf("commodities=%d paths=%d", inst.NumCommodities(), inst.NumPaths())
	}
	if inst.MaxPathLen() != 1 {
		t.Errorf("D = %d, want 1", inst.MaxPathLen())
	}
	if !approx(inst.MaxSlope(), 1, 1e-15) {
		t.Errorf("beta = %g, want 1", inst.MaxSlope())
	}
	// lmax = max(ℓ1(1), ℓ2(1)) = max(1,1) = 1
	if !approx(inst.LMax(), 1, 1e-15) {
		t.Errorf("lmax = %g, want 1", inst.LMax())
	}
	if !approx(inst.TotalDemand(), 1, 1e-15) {
		t.Errorf("demand = %g", inst.TotalDemand())
	}
	if inst.Beta() != inst.MaxSlope() {
		t.Error("Beta alias mismatch")
	}
}

func TestNewInstanceErrors(t *testing.T) {
	g := graph.New()
	s := g.MustAddNode("s")
	d := g.MustAddNode("t")
	g.MustAddEdge(s, d)
	lats := []latency.Function{latency.Constant{C: 1}}

	if _, err := NewInstance(g, nil, []Commodity{{Source: s, Sink: d, Demand: 1}}); !errors.Is(err, ErrLatencyCount) {
		t.Errorf("latency count error = %v", err)
	}
	if _, err := NewInstance(g, lats, nil); !errors.Is(err, ErrNoCommodities) {
		t.Errorf("no commodities error = %v", err)
	}
	if _, err := NewInstance(g, lats, []Commodity{{Source: s, Sink: d, Demand: 0}}); !errors.Is(err, ErrBadDemand) {
		t.Errorf("zero demand error = %v", err)
	}
	if _, err := NewInstance(g, lats, []Commodity{{Source: s, Sink: d, Demand: math.NaN()}}); !errors.Is(err, ErrBadDemand) {
		t.Errorf("NaN demand error = %v", err)
	}
	if _, err := NewInstance(g, lats, []Commodity{{Source: d, Sink: s, Demand: 1}}); !errors.Is(err, graph.ErrNoPath) {
		t.Errorf("no-path error = %v", err)
	}
}

func TestWithMaxPathLen(t *testing.T) {
	g := graph.New()
	s := g.MustAddNode("s")
	a := g.MustAddNode("a")
	d := g.MustAddNode("t")
	g.MustAddEdge(s, d)
	g.MustAddEdge(s, a)
	g.MustAddEdge(a, d)
	lats := []latency.Function{latency.Constant{C: 1}, latency.Constant{C: 1}, latency.Constant{C: 1}}
	inst, err := NewInstance(g, lats, []Commodity{{Source: s, Sink: d, Demand: 1}}, WithMaxPathLen(1))
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	if inst.NumPaths() != 1 {
		t.Errorf("bounded enumeration found %d paths, want 1", inst.NumPaths())
	}
}

func TestGlobalIndexing(t *testing.T) {
	inst := twoCommodity(t)
	// Commodity 0 (a->c): paths e0e1 and e2 => 2 paths. Commodity 1: 1 path.
	if inst.NumPaths() != 3 {
		t.Fatalf("NumPaths = %d, want 3", inst.NumPaths())
	}
	lo, hi := inst.CommodityRange(0)
	if lo != 0 || hi != 2 {
		t.Errorf("range c0 = [%d,%d), want [0,2)", lo, hi)
	}
	lo, hi = inst.CommodityRange(1)
	if lo != 2 || hi != 3 {
		t.Errorf("range c1 = [%d,%d), want [2,3)", lo, hi)
	}
	if inst.GlobalIndex(1, 0) != 2 {
		t.Errorf("GlobalIndex(1,0) = %d", inst.GlobalIndex(1, 0))
	}
	if inst.CommodityOf(0) != 0 || inst.CommodityOf(2) != 1 {
		t.Error("CommodityOf wrong")
	}
	if inst.Path(2).Len() != 1 {
		t.Errorf("Path(2) = %v", inst.Path(2))
	}
	if inst.NumCommodityPaths(0) != 2 || inst.NumCommodityPaths(1) != 1 {
		t.Error("NumCommodityPaths wrong")
	}
}

func TestUniformAndSinglePathFlow(t *testing.T) {
	inst := braess(t)
	f := inst.UniformFlow()
	if err := inst.Feasible(f, 1e-12); err != nil {
		t.Errorf("uniform flow infeasible: %v", err)
	}
	for _, x := range f {
		if !approx(x, 1.0/3, 1e-12) {
			t.Errorf("uniform share = %g", x)
		}
	}
	sp := inst.SinglePathFlow(0)
	if err := inst.Feasible(sp, 1e-12); err != nil {
		t.Errorf("single-path flow infeasible: %v", err)
	}
	sum := 0.0
	for _, x := range sp {
		sum += x
	}
	if !approx(sum, 1, 1e-12) {
		t.Errorf("single path total = %g", sum)
	}
	// Clamping beyond path count.
	sp2 := inst.SinglePathFlow(99)
	if err := inst.Feasible(sp2, 1e-12); err != nil {
		t.Errorf("clamped single-path flow infeasible: %v", err)
	}
}

func TestFeasibleErrors(t *testing.T) {
	inst := pigou(t)
	if err := inst.Feasible(Vector{0.5}, 1e-9); !errors.Is(err, ErrDimension) {
		t.Errorf("dimension error = %v", err)
	}
	if err := inst.Feasible(Vector{-0.1, 1.1}, 1e-9); !errors.Is(err, ErrNegativeFlow) {
		t.Errorf("negative error = %v", err)
	}
	if err := inst.Feasible(Vector{0.2, 0.2}, 1e-9); !errors.Is(err, ErrDemandMismatch) {
		t.Errorf("demand error = %v", err)
	}
	if err := inst.Feasible(Vector{math.NaN(), 1}, 1e-9); !errors.Is(err, ErrNegativeFlow) {
		t.Errorf("NaN error = %v", err)
	}
}

func TestProjectRepairsRoundoff(t *testing.T) {
	inst := pigou(t)
	f := Vector{-1e-12, 1.0000000001}
	inst.Project(f, 1e-9)
	if err := inst.Feasible(f, 1e-12); err != nil {
		t.Errorf("projected flow infeasible: %v", err)
	}
	if f[0] != 0 {
		t.Errorf("tiny negative not clamped: %g", f[0])
	}
}

func TestVectorHelpers(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 9
	if v[0] != 1 {
		t.Error("Clone aliases memory")
	}
	if d := v.MaxAbsDiff(Vector{1, 2, 5}); !approx(d, 2, 1e-15) {
		t.Errorf("MaxAbsDiff = %g", d)
	}
	if !math.IsNaN(v.MaxAbsDiff(Vector{1})) {
		t.Error("length mismatch should yield NaN")
	}
}

func TestWithKShortestPaths(t *testing.T) {
	// Braess graph: restricting to k=2 keeps the two cheapest free-flow
	// paths (the bridge path has free-flow cost 0+0+0, the others 1).
	g := graph.New()
	s := g.MustAddNode("s")
	a := g.MustAddNode("a")
	b := g.MustAddNode("b")
	d := g.MustAddNode("t")
	lats := make([]latency.Function, 5)
	lats[g.MustAddEdge(s, a)] = latency.Linear{Slope: 1}
	lats[g.MustAddEdge(s, b)] = latency.Constant{C: 1}
	lats[g.MustAddEdge(a, d)] = latency.Constant{C: 1}
	lats[g.MustAddEdge(b, d)] = latency.Linear{Slope: 1}
	lats[g.MustAddEdge(a, b)] = latency.Constant{C: 0}
	comms := []Commodity{{Source: s, Sink: d, Demand: 1}}

	full, err := NewInstance(g, lats, comms)
	if err != nil {
		t.Fatal(err)
	}
	if full.NumPaths() != 3 {
		t.Fatalf("full enumeration found %d paths", full.NumPaths())
	}
	restricted, err := NewInstance(g, lats, comms, WithKShortestPaths(2))
	if err != nil {
		t.Fatal(err)
	}
	if restricted.NumPaths() != 2 {
		t.Fatalf("k=2 restriction found %d paths", restricted.NumPaths())
	}
	// The cheapest free-flow path (the bridge, cost 0) must be included.
	foundBridge := false
	for gIdx := 0; gIdx < restricted.NumPaths(); gIdx++ {
		if restricted.Path(gIdx).Len() == 3 {
			foundBridge = true
		}
	}
	if !foundBridge {
		t.Error("k-shortest restriction dropped the cheapest path")
	}
	// Oversized k degrades to full enumeration.
	over, err := NewInstance(g, lats, comms, WithKShortestPaths(99))
	if err != nil {
		t.Fatal(err)
	}
	if over.NumPaths() != 3 {
		t.Errorf("k=99 found %d paths, want 3", over.NumPaths())
	}
}
