package flow

import (
	"runtime"
	"sync"

	"wardrop/internal/latency"
)

// This file is the compiled evaluation kernel: the instance's [][]graph.Path
// strategy sets flattened into CSR incidence arrays, a reusable Workspace
// arena, and an Evaluator that owns all per-run scratch and keeps edge
// flows, edge latencies, path latencies and the per-edge potential terms
// consistent with a flow vector — by full re-evaluation or by incremental
// updates that touch only the edges and paths a flow move actually affects.
//
// The kernel is numerically transparent: every quantity it produces is
// bit-for-bit the value the naive reference methods (EdgeFlows,
// EdgeLatencies, PathLatenciesFromEdges, PotentialFromEdges) produce for the
// same flow. Full evaluation preserves the reference accumulation orders;
// incremental updates recompute each touched edge flow by rescanning its
// path list in ascending global-path order — the exact addition sequence of
// the full pass — so a delta-updated Evaluator never drifts from a freshly
// evaluated one. The reference methods stay as the differential-testing
// oracle.

// incidence is the CSR form of the instance's path sets: a forward
// path→edges layout plus the reverse edge→paths index incremental updates
// need. Indices are int32 — path and edge counts are far below 2³¹ for any
// enumerable instance — halving the index memory against int.
type incidence struct {
	// pathStart[g]..pathStart[g+1] indexes pathEdges, the edge list of
	// global path g (in path order).
	pathStart []int32
	pathEdges []int32
	// edgeStart[e]..edgeStart[e+1] indexes edgePaths, the global indices of
	// the paths through edge e in ascending order.
	edgeStart []int32
	edgePaths []int32
	// pathWork[g] = Σ_{e ∈ path g} deg(e): the reverse-index rescan cost an
	// incremental refresh pays for a change to path g. Precomputed so the
	// incremental-vs-full crossover gate costs O(changed paths), not a walk
	// of their edge lists.
	pathWork []int32
}

// kernel returns the instance's compiled incidence and batch latency
// program, building both on first use (guarded by the instance's once).
func (in *Instance) kernel() (*incidence, *latency.Program) {
	in.kernOnce.Do(func() {
		in.kernInc = in.compileIncidence()
		in.kernProg = latency.Compile(in.latencies)
	})
	return in.kernInc, in.kernProg
}

// Program returns the instance's compiled batch latency program (shared,
// immutable, built on first use).
func (in *Instance) Program() *latency.Program {
	_, prog := in.kernel()
	return prog
}

func (in *Instance) compileIncidence() *incidence {
	nE := in.g.NumEdges()
	inc := &incidence{
		pathStart: make([]int32, in.totalPaths+1),
		edgeStart: make([]int32, nE+1),
	}
	total := 0
	g := 0
	for i := range in.paths {
		for _, p := range in.paths[i] {
			total += len(p.Edges)
			g++
			inc.pathStart[g] = int32(total)
		}
	}
	inc.pathEdges = make([]int32, total)
	inc.edgePaths = make([]int32, total)

	// Forward CSR plus per-edge degree counts.
	deg := make([]int32, nE)
	k := 0
	for i := range in.paths {
		for _, p := range in.paths[i] {
			for _, e := range p.Edges {
				inc.pathEdges[k] = int32(e)
				deg[e]++
				k++
			}
		}
	}
	// Reverse CSR by counting sort; filling in ascending global path order
	// leaves every edge's path list ascending — the invariant the
	// incremental rescan relies on for reference-identical addition order.
	for e := 0; e < nE; e++ {
		inc.edgeStart[e+1] = inc.edgeStart[e] + deg[e]
	}
	next := make([]int32, nE)
	copy(next, inc.edgeStart[:nE])
	g = 0
	for i := range in.paths {
		for _, p := range in.paths[i] {
			for _, e := range p.Edges {
				inc.edgePaths[next[e]] = int32(g)
				next[e]++
			}
			g++
		}
	}
	inc.pathWork = make([]int32, in.totalPaths)
	for g := range inc.pathWork {
		w := int32(0)
		for _, e := range inc.pathEdges[inc.pathStart[g]:inc.pathStart[g+1]] {
			w += deg[e]
		}
		inc.pathWork[g] = w
	}
	return inc
}

// Workspace is a reusable arena of float64 scratch buffers. A simulation
// run carves all its scratch (edge/path buffers, rate-matrix rows,
// integrator stages) from one workspace; Reset rewinds the arena so the
// next run — on the same or a different instance — reuses the same backing
// memory, growing a slab only when a run needs more than any previous one.
// The zero value and nil are both ready to use (nil never reuses, it just
// allocates), so workspace plumbing is always optional.
//
// A workspace serializes one run at a time: it is not safe for concurrent
// use, and buffers handed out before a Reset are invalidated by it. Pools
// (the sweep engine's workers) therefore keep one workspace per worker.
type Workspace struct {
	slabs [][]float64
	next  int
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// Reset rewinds the arena: every slice previously returned by Floats is up
// for reuse and must no longer be referenced by the caller.
func (w *Workspace) Reset() {
	if w != nil {
		w.next = 0
	}
}

// Floats returns a length-n scratch slice with unspecified contents. A nil
// workspace allocates fresh memory; otherwise the slice reuses (and grows
// when needed) the arena slab at the current cursor.
func (w *Workspace) Floats(n int) []float64 {
	if w == nil {
		return make([]float64, n)
	}
	if w.next == len(w.slabs) {
		w.slabs = append(w.slabs, make([]float64, n))
	} else if cap(w.slabs[w.next]) < n {
		w.slabs[w.next] = make([]float64, n)
	}
	s := w.slabs[w.next][:n]
	w.next++
	return s
}

// Evaluator binds an instance's compiled kernel to a set of scratch buffers
// and keeps them consistent with a flow vector. Eval performs the full
// pass; ApplyDelta and Refresh update incrementally after sparse flow
// moves. All returned slices are views into the evaluator's buffers, valid
// until the next Eval/ApplyDelta/Refresh call.
//
// An evaluator is single-goroutine state; create one per concurrent run
// (they share the instance's immutable compiled incidence and latency
// program, so construction is cheap once the instance is warm).
type Evaluator struct {
	inst *Instance
	inc  *incidence
	prog *latency.Program

	edgeFlow []float64
	edgeLat  []float64
	edgeInt  []float64
	pathLat  []float64

	// Incremental bookkeeping: epoch marks de-duplicate touched edges and
	// dependent paths without clearing arrays between updates.
	edgeMark  []int32
	pathMark  []int32
	epoch     int32
	touched   []int32
	evaluated bool
	// potValid tracks whether edgeInt matches edgeFlow; Potential
	// materializes the per-edge integral terms lazily and Refresh keeps
	// them current once materialized, so runs that never ask for the
	// potential never pay for it.
	potValid bool

	// Parallel full-pass state. par is the worker count (1 disables);
	// forcePar bypasses the size crossover so tests can exercise the
	// parallel kernel on toy instances. The chunk plans are CSR-weight-
	// balanced boundaries in edge and path space, computed once per worker
	// count and reused by every pass, so parallel phases allocate nothing
	// beyond the goroutine fan-out itself (the same trade the dynamics
	// parfill makes).
	par        int
	forcePar   bool
	edgeChunks []int32
	pathChunks []int32
}

const (
	// evalParMinWork is the serial/parallel crossover for full passes:
	// below this total work (incidence entries + edges) the goroutine
	// fan-out costs more than it saves — toy catalog instances (the 6×6
	// grid is a few hundred entries) stay on the serial path.
	evalParMinWork = 1 << 14
	// maxEvalWorkers caps the fan-out; beyond ~8 workers the passes are
	// memory-bound (matches the dynamics parfill cap).
	maxEvalWorkers = 8
)

func defaultEvalWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > maxEvalWorkers {
		n = maxEvalWorkers
	}
	return n
}

// NewEvaluator builds an evaluator for the instance, carving its buffers
// from ws (nil allocates privately).
func NewEvaluator(inst *Instance, ws *Workspace) *Evaluator {
	inc, prog := inst.kernel()
	nE := inst.g.NumEdges()
	nP := inst.totalPaths
	ev := &Evaluator{
		inst:     inst,
		inc:      inc,
		prog:     prog,
		edgeFlow: ws.Floats(nE),
		edgeLat:  ws.Floats(nE),
		edgeInt:  ws.Floats(nE),
		pathLat:  ws.Floats(nP),
		edgeMark: make([]int32, nE),
		pathMark: make([]int32, nP),
		touched:  make([]int32, 0, nE),
		par:      defaultEvalWorkers(),
	}
	return ev
}

// SetParallelism overrides the worker count for parallel full passes.
// workers <= 1 forces the serial path; workers > 1 forces the parallel path
// with that many workers regardless of the size crossover (differential
// tests use this to exercise the parallel kernel on small instances).
// workers == 0 restores the default: min(GOMAXPROCS, 8) workers, engaged
// only above the crossover threshold. Parallel and serial passes produce
// identical bits, so this is a performance knob, never a semantic one.
func (ev *Evaluator) SetParallelism(workers int) {
	switch {
	case workers == 0:
		ev.par = defaultEvalWorkers()
		ev.forcePar = false
	case workers <= 1:
		ev.par = 1
		ev.forcePar = false
	default:
		ev.par = workers
		ev.forcePar = true
	}
	ev.edgeChunks = nil
	ev.pathChunks = nil
}

// parallelEval reports whether a full pass should take the parallel path.
func (ev *Evaluator) parallelEval() bool {
	if ev.par <= 1 {
		return false
	}
	return ev.forcePar || len(ev.inc.pathEdges)+len(ev.edgeFlow) >= evalParMinWork
}

// ensureChunks builds (or rebuilds after SetParallelism) the cached chunk
// plans: par+1 boundaries in edge space balanced by reverse-index degree,
// and in path space balanced by path length.
func (ev *Evaluator) ensureChunks() {
	if len(ev.edgeChunks) == ev.par+1 {
		return
	}
	ev.edgeChunks = balanceChunks(ev.inc.edgeStart, ev.par)
	ev.pathChunks = balanceChunks(ev.inc.pathStart, ev.par)
}

// balanceChunks splits the rows of a CSR starts array (len(starts)-1 rows,
// row i weighing starts[i+1]-starts[i]) into parts contiguous chunks of
// roughly equal total weight, returning parts+1 nondecreasing boundaries.
func balanceChunks(starts []int32, parts int) []int32 {
	n := len(starts) - 1
	total := int64(starts[n])
	bounds := make([]int32, parts+1)
	bounds[parts] = int32(n)
	i := 0
	for c := 1; c < parts; c++ {
		target := total * int64(c) / int64(parts)
		for i < n && int64(starts[i]) < target {
			i++
		}
		bounds[c] = int32(i)
	}
	return bounds
}

// Instance returns the bound instance.
func (ev *Evaluator) Instance() *Instance { return ev.inst }

// Eval fully re-evaluates edge flows, edge latencies and path latencies
// from f. Above the size crossover (and with more than one worker
// available) the pass runs in parallel over pre-balanced edge and path
// chunks; below it, serially. Both paths produce identical bits — see
// evalParallel for the argument — so the crossover is purely a performance
// decision.
func (ev *Evaluator) Eval(f Vector) {
	if ev.parallelEval() {
		ev.evalParallel(f)
	} else {
		ev.evalSerial(f)
	}
	ev.evaluated = true
	ev.potValid = false
}

func (ev *Evaluator) evalSerial(f Vector) {
	pathEdges := ev.inc.pathEdges
	pathStart := ev.inc.pathStart
	edgeFlow := ev.edgeFlow
	for e := range edgeFlow {
		edgeFlow[e] = 0
	}
	// Ascending global path order with zero-flow paths skipped — the
	// reference EdgeFlows accumulation sequence.
	for g := range f {
		fp := f[g]
		if fp == 0 {
			continue
		}
		for _, e := range pathEdges[pathStart[g]:pathStart[g+1]] {
			edgeFlow[e] += fp
		}
	}
	ev.prog.Values(edgeFlow, ev.edgeLat)
	edgeLat := ev.edgeLat
	pathLat := ev.pathLat
	for g := range pathLat {
		sum := 0.0
		for _, e := range pathEdges[pathStart[g]:pathStart[g+1]] {
			sum += edgeLat[e]
		}
		pathLat[g] = sum
	}
}

// evalParallel is the chunked full pass. Phase 1 fans out over disjoint
// edge ranges: each worker computes its edges' flows by a gather over the
// reverse index and batch-evaluates their latencies via ValuesRange. Phase
// 2 (after a barrier — path sums read edge latencies across chunk
// boundaries) fans out over disjoint path ranges summing path latencies.
//
// Bit-identity with evalSerial: the gather iterates edge e's path list in
// ascending global order skipping zero flows — exactly the per-edge
// addition sequence the serial forward scatter produces (the invariant the
// incremental rescan already relies on, pinned by the kernel differential
// tests); latency evaluation and path sums are per-edge/per-path
// independent, so chunking cannot reorder anything. No worker writes
// outside its range and phases are separated by barriers, so the pass is
// race-free by construction.
func (ev *Evaluator) evalParallel(f Vector) {
	ev.ensureChunks()
	inc := ev.inc
	var wg sync.WaitGroup
	for c := 0; c < ev.par; c++ {
		e0, e1 := ev.edgeChunks[c], ev.edgeChunks[c+1]
		if e0 == e1 {
			continue
		}
		wg.Add(1)
		go func(e0, e1 int32) {
			defer wg.Done()
			edgeFlow := ev.edgeFlow
			for e := e0; e < e1; e++ {
				sum := 0.0
				for _, g := range inc.edgePaths[inc.edgeStart[e]:inc.edgeStart[e+1]] {
					if fp := f[g]; fp != 0 {
						sum += fp
					}
				}
				edgeFlow[e] = sum
			}
			ev.prog.ValuesRange(edgeFlow, ev.edgeLat, e0, e1)
		}(e0, e1)
	}
	wg.Wait()
	for c := 0; c < ev.par; c++ {
		g0, g1 := ev.pathChunks[c], ev.pathChunks[c+1]
		if g0 == g1 {
			continue
		}
		wg.Add(1)
		go func(g0, g1 int32) {
			defer wg.Done()
			edgeLat := ev.edgeLat
			for g := g0; g < g1; g++ {
				sum := 0.0
				for _, e := range inc.pathEdges[inc.pathStart[g]:inc.pathStart[g+1]] {
					sum += edgeLat[e]
				}
				ev.pathLat[g] = sum
			}
		}(g0, g1)
	}
	wg.Wait()
}

// ApplyDelta moves amount flow from global path p to global path q
// (mutating f) and incrementally re-evaluates: only the edges of p and q
// and the paths sharing those edges are recomputed. Requires a prior Eval
// of f.
func (ev *Evaluator) ApplyDelta(f Vector, p, q int, amount float64) {
	f[p] -= amount
	f[q] += amount
	ev.Refresh(f, p, q)
}

// Refresh incrementally re-evaluates after the caller changed f on exactly
// the given global paths (f is already updated). Requires that every other
// entry of f is unchanged since the evaluator last saw it, and a prior
// Eval. Refresh gates itself by estimated cost: when the rescan the change
// implies (precomputed per-path as pathWork) approaches the cost of a full
// pass, it falls back to Eval — which batches latency evaluation and
// parallelizes on large instances, and produces identical bits — so a move
// through a bottleneck edge shared by most paths never does more work than
// a full evaluation.
func (ev *Evaluator) Refresh(f Vector, changed ...int) {
	if !ev.evaluated {
		ev.Eval(f)
		return
	}
	inc := ev.inc
	// pathWork prices the reverse-index rescan; the dependent-path re-sums
	// and the epoch marking cost roughly that much again, while the batched
	// full pass streams linearly. The 3x factor makes the incremental path
	// engage only where it clearly wins (changes touching under about a
	// third of the incidence) — on dense overlapping path sets like the
	// grid, a two-path move reaches most of the incidence and the full pass
	// is faster.
	work := int32(0)
	limit := int32(len(inc.pathEdges))
	for _, g := range changed {
		work += inc.pathWork[g]
		if work >= limit/3 {
			ev.fullRefresh(f, changed)
			return
		}
	}
	ev.epoch++
	// Epoch wrap (int32 increment past MaxInt32 goes negative): reset the
	// marks to 0 and restart at 1, so live epochs are always positive and
	// can never collide with a stale mark.
	if ev.epoch <= 0 {
		for i := range ev.edgeMark {
			ev.edgeMark[i] = 0
		}
		for i := range ev.pathMark {
			ev.pathMark[i] = 0
		}
		ev.epoch = 1
	}
	ev.touched = ev.touched[:0]
	for _, g := range changed {
		for _, e := range inc.pathEdges[inc.pathStart[g]:inc.pathStart[g+1]] {
			if ev.edgeMark[e] != ev.epoch {
				ev.edgeMark[e] = ev.epoch
				ev.touched = append(ev.touched, e)
			}
		}
	}
	lats := ev.inst.latencies
	for _, e := range ev.touched {
		// Rescan the edge's path list in ascending order, skipping zero
		// flows: the exact addition sequence of the reference full pass, so
		// the incremental value is bitwise the full-evaluation value.
		sum := 0.0
		for _, g := range inc.edgePaths[inc.edgeStart[e]:inc.edgeStart[e+1]] {
			if fp := f[g]; fp != 0 {
				sum += fp
			}
		}
		ev.edgeFlow[e] = sum
		ev.edgeLat[e] = lats[e].Value(sum)
		if ev.potValid {
			ev.edgeInt[e] = lats[e].Integral(sum)
		}
	}
	// Re-sum every path through a touched edge (in path-edge order, as the
	// full pass does).
	for _, e := range ev.touched {
		for _, g := range inc.edgePaths[inc.edgeStart[e]:inc.edgeStart[e+1]] {
			if ev.pathMark[g] == ev.epoch {
				continue
			}
			ev.pathMark[g] = ev.epoch
			sum := 0.0
			for _, ee := range inc.pathEdges[inc.pathStart[g]:inc.pathStart[g+1]] {
				sum += ev.edgeLat[ee]
			}
			ev.pathLat[g] = sum
		}
	}
}

// fullRefresh is Refresh's dense fallback: a batched full pass, plus a
// repair of the potential terms when they were live. Only the changed
// paths' edges carry new flows — every other edge recomputes to identical
// bits (same nonzero flows, same ascending addition order) — so patching
// just those integrals leaves edgeInt exactly as a from-scratch
// materialization would, and the next Potential call is a plain sum
// instead of a full Integrals pass. The patch uses the same per-edge
// Integral calls the incremental path uses, which match the batched
// program bit-for-bit (the invariant the incremental mode is built on).
func (ev *Evaluator) fullRefresh(f Vector, changed []int) {
	hadPot := ev.potValid
	ev.Eval(f)
	if !hadPot {
		return
	}
	inc := ev.inc
	lats := ev.inst.latencies
	for _, g := range changed {
		for _, e := range inc.pathEdges[inc.pathStart[g]:inc.pathStart[g+1]] {
			ev.edgeInt[e] = lats[e].Integral(ev.edgeFlow[e])
		}
	}
	ev.potValid = true
}

// Update re-evaluates after the caller changed f on the given global
// paths. The incremental-vs-full cost gate now lives in Refresh itself, so
// Update is a thin alias kept for callers holding a slice.
func (ev *Evaluator) Update(f Vector, changed []int) {
	ev.Refresh(f, changed...)
}

// EdgeFlows returns the current per-edge flows (a live view).
func (ev *Evaluator) EdgeFlows() []float64 { return ev.edgeFlow }

// EdgeLatencies returns the current per-edge latencies (a live view).
func (ev *Evaluator) EdgeLatencies() []float64 { return ev.edgeLat }

// PathLatencies returns the current per-path latencies (a live view).
func (ev *Evaluator) PathLatencies() []float64 { return ev.pathLat }

// Potential returns Φ(f) for the last evaluated flow: the per-edge
// integral terms (materialized lazily on first use, then kept current by
// Refresh) summed in edge order — the reference PotentialFromEdges
// summation sequence.
func (ev *Evaluator) Potential() float64 {
	if !ev.potValid {
		if ev.parallelEval() {
			ev.ensureChunks()
			var wg sync.WaitGroup
			for c := 0; c < ev.par; c++ {
				e0, e1 := ev.edgeChunks[c], ev.edgeChunks[c+1]
				if e0 == e1 {
					continue
				}
				wg.Add(1)
				go func(e0, e1 int32) {
					defer wg.Done()
					ev.prog.IntegralsRange(ev.edgeFlow, ev.edgeInt, e0, e1)
				}(e0, e1)
			}
			wg.Wait()
		} else {
			ev.prog.Integrals(ev.edgeFlow, ev.edgeInt)
		}
		ev.potValid = true
	}
	phi := 0.0
	for _, v := range ev.edgeInt {
		phi += v
	}
	return phi
}

// BestResponseInto writes the all-or-nothing best response to pathLat into
// b (the reference BestResponse without its allocation): each commodity's
// demand routes entirely onto its minimum-latency path, ties towards the
// lowest global index.
func (in *Instance) BestResponseInto(pathLat []float64, b Vector) {
	for g := range b {
		b[g] = 0
	}
	for i := range in.commodities {
		idx, _ := in.MinLatency(i, pathLat)
		b[idx] = in.commodities[i].Demand
	}
}
