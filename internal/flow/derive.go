package flow

import (
	"fmt"
	"math"

	"wardrop/internal/latency"
)

// Derive returns a new instance over the same network and path sets with the
// edge latencies replaced by lats (nil keeps the current functions) and each
// commodity demand multiplied by the matching demandScale factor (nil keeps
// the current demands). The invariants ℓmax and β are recomputed for the new
// functions; the path enumeration, the CSR incidence and the graph are shared
// with the receiver, so deriving is cheap even on large instances — only the
// batch latency program is recompiled.
//
// This is the primitive behind time-varying scenarios: each timeline segment
// is a stationary instance derived from the base one.
func (in *Instance) Derive(lats []latency.Function, demandScale []float64) (*Instance, error) {
	if lats == nil {
		lats = in.latencies
	}
	if len(lats) != in.g.NumEdges() {
		return nil, fmt.Errorf("%w: %d functions for %d edges", ErrLatencyCount, len(lats), in.g.NumEdges())
	}
	if demandScale != nil && len(demandScale) != len(in.commodities) {
		return nil, fmt.Errorf("%w: %d scale factors for %d commodities", ErrBadDemand, len(demandScale), len(in.commodities))
	}
	comms := append([]Commodity(nil), in.commodities...)
	if demandScale != nil {
		for i := range comms {
			comms[i].Demand *= demandScale[i]
			if d := comms[i].Demand; d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				return nil, fmt.Errorf("%w: commodity %d scaled demand %g", ErrBadDemand, i, d)
			}
		}
	}
	d := &Instance{
		g:           in.g,
		latencies:   append([]latency.Function(nil), lats...),
		commodities: comms,
		paths:       in.paths,
		offsets:     in.offsets,
		totalPaths:  in.totalPaths,
		maxPathLen:  in.maxPathLen,
	}
	for _, paths := range d.paths {
		for _, p := range paths {
			sum := 0.0
			for _, e := range p.Edges {
				sum += d.latencies[e].Value(1)
			}
			d.lmax = math.Max(d.lmax, sum)
		}
	}
	for _, f := range d.latencies {
		d.maxSlope = math.Max(d.maxSlope, f.SlopeBound())
	}
	// The incidence depends only on the shared path sets, so the parent's
	// compiled form is reused; only the latency program differs. Seeding both
	// eagerly (and burning the once) keeps the lazy-kernel contract intact.
	inc, _ := in.kernel()
	d.kernInc = inc
	d.kernProg = latency.Compile(d.latencies)
	d.kernOnce.Do(func() {})
	return d, nil
}
