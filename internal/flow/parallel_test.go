package flow_test

// Differential tests for the parallel full-pass kernel: with forced
// parallelism at several worker counts, Eval, Refresh and Potential must
// reproduce the serial evaluator — and therefore the naive reference —
// bit for bit, on the toy topology zoo and on 10⁴+-edge instances from
// the large catalog families. Run under -race these tests also prove the
// chunked phases are data-race-free.

import (
	"math"
	"testing"

	"wardrop/internal/flow"
	"wardrop/internal/topo"
)

// largeInstances builds one 10⁴-edge instance per large family (k-shortest
// path strategy sets keep enumeration tractable at this size).
func largeInstances(t testing.TB) map[string]*flow.Instance {
	t.Helper()
	sparse, err := topo.SparseRandom(10000, 4, 4, 6, 0xabc)
	if err != nil {
		t.Fatal(err)
	}
	scale, err := topo.ScaleFree(10000, 3, 4, 6, 0xdef)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*flow.Instance{
		"sparse-random/10k": sparse,
		"scalefree/10k":     scale,
	}
}

func mustEqualScalarBits(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("%s: got %v (%#x), want %v (%#x)",
			what, got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

// TestParallelEvalMatchesSerialBitwise forces the parallel path at several
// worker counts — including more workers than some instances have edges —
// and requires every full-pass quantity to match the serial evaluator and
// the naive reference bitwise.
func TestParallelEvalMatchesSerialBitwise(t *testing.T) {
	insts := kernelInstances(t)
	for name, inst := range largeInstances(t) {
		insts[name] = inst
	}
	for name, inst := range insts {
		t.Run(name, func(t *testing.T) {
			rng := &topo.SplitMix{State: 7}
			ser := flow.NewEvaluator(inst, nil)
			ser.SetParallelism(1)
			for _, workers := range []int{2, 3, 8, 16} {
				par := flow.NewEvaluator(inst, nil)
				par.SetParallelism(workers)
				for trial := 0; trial < 5; trial++ {
					f := randomFlow(inst, rng)
					ser.Eval(f)
					par.Eval(f)
					mustEqualBits(t, "edge flows", par.EdgeFlows(), ser.EdgeFlows())
					mustEqualBits(t, "edge latencies", par.EdgeLatencies(), ser.EdgeLatencies())
					mustEqualBits(t, "path latencies", par.PathLatencies(), ser.PathLatencies())
					mustEqualScalarBits(t, "potential", par.Potential(), ser.Potential())

					fe, le, pl, phi := reference(inst, f)
					mustEqualBits(t, "edge flows vs reference", par.EdgeFlows(), fe)
					mustEqualBits(t, "edge latencies vs reference", par.EdgeLatencies(), le)
					mustEqualBits(t, "path latencies vs reference", par.PathLatencies(), pl)
					mustEqualScalarBits(t, "potential vs reference", par.Potential(), phi)
				}
			}
		})
	}
}

// TestParallelIncrementalMatchesSerial400Steps drives serial and
// forced-parallel evaluators through the same 400-step random delta
// sequence on 10⁴-edge instances. After every step the two must agree
// bitwise, and periodically both must agree with a from-scratch serial
// Eval — delta-updated parallel state may never drift.
func TestParallelIncrementalMatchesSerial400Steps(t *testing.T) {
	for name, inst := range largeInstances(t) {
		t.Run(name, func(t *testing.T) {
			rng := &topo.SplitMix{State: 99}
			ser := flow.NewEvaluator(inst, nil)
			ser.SetParallelism(1)
			par := flow.NewEvaluator(inst, nil)
			par.SetParallelism(4)
			fresh := flow.NewEvaluator(inst, nil)
			fresh.SetParallelism(1)

			fSer := inst.UniformFlow()
			fPar := inst.UniformFlow()
			ser.Eval(fSer)
			par.Eval(fPar)
			n := inst.NumPaths()
			for step := 0; step < 400; step++ {
				p := int(rng.Next() % uint64(n))
				q := int(rng.Next() % uint64(n))
				amount := rng.Float64() * fSer[p]
				ser.ApplyDelta(fSer, p, q, amount)
				par.ApplyDelta(fPar, p, q, amount)
				mustEqualBits(t, "flow vectors", fPar, fSer)
				mustEqualBits(t, "edge flows", par.EdgeFlows(), ser.EdgeFlows())
				mustEqualBits(t, "path latencies", par.PathLatencies(), ser.PathLatencies())
				if step%50 == 49 {
					mustEqualBits(t, "edge latencies", par.EdgeLatencies(), ser.EdgeLatencies())
					mustEqualScalarBits(t, "potential", par.Potential(), ser.Potential())
					fresh.Eval(fSer)
					mustEqualBits(t, "edge flows vs fresh", par.EdgeFlows(), fresh.EdgeFlows())
					mustEqualBits(t, "path latencies vs fresh", par.PathLatencies(), fresh.PathLatencies())
				}
			}
		})
	}
}

// TestRefreshCostGateFallsBackBitIdentically changes every path at once:
// the Refresh cost gate must take the full-Eval fallback and still produce
// exactly the bits an incremental-only evaluator would have.
func TestRefreshCostGateFallsBackBitIdentically(t *testing.T) {
	for name, inst := range kernelInstances(t) {
		t.Run(name, func(t *testing.T) {
			rng := &topo.SplitMix{State: 3}
			ev := flow.NewEvaluator(inst, nil)
			f := randomFlow(inst, rng)
			ev.Eval(f)
			changed := make([]int, inst.NumPaths())
			for g := range changed {
				changed[g] = g
				f[g] = rng.Float64()
			}
			ev.Refresh(f, changed...)
			fe, le, pl, phi := reference(inst, f)
			mustEqualBits(t, "edge flows", ev.EdgeFlows(), fe)
			mustEqualBits(t, "edge latencies", ev.EdgeLatencies(), le)
			mustEqualBits(t, "path latencies", ev.PathLatencies(), pl)
			mustEqualScalarBits(t, "potential", ev.Potential(), phi)
		})
	}
}
