package flow

import (
	"fmt"
	"math"
)

// Vector is a path-flow vector indexed by global path index. Vectors are
// plain slices so callers can use native indexing; the Instance methods
// interpret them.
type Vector []float64

// Clone returns a copy of the vector.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// MaxAbsDiff returns the sup-norm distance between two vectors of equal
// length (NaN if lengths differ).
func (v Vector) MaxAbsDiff(w Vector) float64 {
	if len(v) != len(w) {
		return math.NaN()
	}
	d := 0.0
	for i := range v {
		d = math.Max(d, math.Abs(v[i]-w[i]))
	}
	return d
}

// UniformFlow returns the flow that spreads each commodity's demand evenly
// over its paths.
func (in *Instance) UniformFlow() Vector {
	f := make(Vector, in.totalPaths)
	for i := range in.commodities {
		lo, hi := in.CommodityRange(i)
		share := in.commodities[i].Demand / float64(hi-lo)
		for g := lo; g < hi; g++ {
			f[g] = share
		}
	}
	return f
}

// SinglePathFlow returns the flow that routes every commodity entirely on its
// path with the given local index (clamped to the commodity's path count).
func (in *Instance) SinglePathFlow(local int) Vector {
	f := make(Vector, in.totalPaths)
	for i := range in.commodities {
		lo, hi := in.CommodityRange(i)
		idx := local
		if idx >= hi-lo {
			idx = hi - lo - 1
		}
		f[lo+idx] = in.commodities[i].Demand
	}
	return f
}

// Feasible verifies that f is a feasible flow: correct dimension,
// non-negative entries (within tol), and per-commodity demands met within
// tol.
func (in *Instance) Feasible(f Vector, tol float64) error {
	if len(f) != in.totalPaths {
		return fmt.Errorf("%w: got %d, want %d", ErrDimension, len(f), in.totalPaths)
	}
	for g, x := range f {
		if x < -tol || math.IsNaN(x) {
			return fmt.Errorf("%w: f[%d] = %g", ErrNegativeFlow, g, x)
		}
	}
	for i := range in.commodities {
		lo, hi := in.CommodityRange(i)
		sum := 0.0
		for g := lo; g < hi; g++ {
			sum += f[g]
		}
		if math.Abs(sum-in.commodities[i].Demand) > tol {
			return fmt.Errorf("%w: commodity %d routes %g, demand %g",
				ErrDemandMismatch, i, sum, in.commodities[i].Demand)
		}
	}
	return nil
}

// Project clamps tiny negative entries (|x| <= tol) to zero and rescales each
// commodity block to meet its demand exactly. It repairs integration
// round-off; it is not a general projection.
func (in *Instance) Project(f Vector, tol float64) {
	for g := range f {
		if f[g] < 0 && f[g] >= -tol {
			f[g] = 0
		}
	}
	for i := range in.commodities {
		lo, hi := in.CommodityRange(i)
		sum := 0.0
		for g := lo; g < hi; g++ {
			sum += f[g]
		}
		if sum <= 0 {
			continue
		}
		scale := in.commodities[i].Demand / sum
		for g := lo; g < hi; g++ {
			f[g] *= scale
		}
	}
}
