package flow

import (
	"math"
)

// EdgeFlows computes per-edge flows f_e = Σ_{P∋e} f_P. If out is non-nil and
// correctly sized it is reused, otherwise a new slice is allocated.
func (in *Instance) EdgeFlows(f Vector, out []float64) []float64 {
	if out == nil || len(out) != in.g.NumEdges() {
		out = make([]float64, in.g.NumEdges())
	} else {
		for e := range out {
			out[e] = 0
		}
	}
	for i := range in.commodities {
		lo, hi := in.CommodityRange(i)
		for g := lo; g < hi; g++ {
			fp := f[g]
			if fp == 0 {
				continue
			}
			for _, e := range in.paths[i][g-lo].Edges {
				out[e] += fp
			}
		}
	}
	return out
}

// EdgeLatencies evaluates ℓ_e(f_e) for the given edge flows.
func (in *Instance) EdgeLatencies(edgeFlows []float64, out []float64) []float64 {
	if out == nil || len(out) != len(edgeFlows) {
		out = make([]float64, len(edgeFlows))
	}
	for e, fe := range edgeFlows {
		out[e] = in.latencies[e].Value(fe)
	}
	return out
}

// PathLatenciesFromEdges computes ℓ_P = Σ_{e∈P} ℓ_e for all paths given edge
// latencies.
func (in *Instance) PathLatenciesFromEdges(edgeLat []float64, out []float64) []float64 {
	if out == nil || len(out) != in.totalPaths {
		out = make([]float64, in.totalPaths)
	}
	for i := range in.commodities {
		lo, hi := in.CommodityRange(i)
		for g := lo; g < hi; g++ {
			sum := 0.0
			for _, e := range in.paths[i][g-lo].Edges {
				sum += edgeLat[e]
			}
			out[g] = sum
		}
	}
	return out
}

// PathLatencies computes all path latencies induced by flow f (allocating
// scratch buffers; use the FromEdges variants in hot loops).
func (in *Instance) PathLatencies(f Vector) []float64 {
	fe := in.EdgeFlows(f, nil)
	le := in.EdgeLatencies(fe, nil)
	return in.PathLatenciesFromEdges(le, nil)
}

// MinLatency returns the minimum path latency ℓ^i_min of commodity i and the
// global index of a path attaining it.
func (in *Instance) MinLatency(i int, pathLat []float64) (minIdx int, minVal float64) {
	lo, hi := in.CommodityRange(i)
	minIdx, minVal = lo, pathLat[lo]
	for g := lo + 1; g < hi; g++ {
		if pathLat[g] < minVal {
			minIdx, minVal = g, pathLat[g]
		}
	}
	return minIdx, minVal
}

// AvgLatency returns commodity i's average latency
// L_i = Σ_P (f_P / r_i)·ℓ_P.
func (in *Instance) AvgLatency(i int, f Vector, pathLat []float64) float64 {
	lo, hi := in.CommodityRange(i)
	sum := 0.0
	for g := lo; g < hi; g++ {
		sum += f[g] * pathLat[g]
	}
	return sum / in.commodities[i].Demand
}

// OverallAvgLatency returns L = Σ_P f_P·ℓ_P (the paper normalises Σr_i = 1;
// for other normalisations this is demand-weighted total latency).
func (in *Instance) OverallAvgLatency(f Vector, pathLat []float64) float64 {
	sum := 0.0
	for g := range f {
		sum += f[g] * pathLat[g]
	}
	return sum
}

// MaxUsedLatency returns the maximum latency sustained by any positive amount
// of flow (threshold: f_P > tol).
func (in *Instance) MaxUsedLatency(f Vector, pathLat []float64, tol float64) float64 {
	m := 0.0
	for g := range f {
		if f[g] > tol && pathLat[g] > m {
			m = pathLat[g]
		}
	}
	return m
}

// UnsatisfiedVolume returns the total volume of δ-unsatisfied agents
// (Definition 3): flow on paths P with ℓ_P > ℓ^i_min + δ.
func (in *Instance) UnsatisfiedVolume(f Vector, pathLat []float64, delta float64) float64 {
	vol := 0.0
	for i := range in.commodities {
		lo, hi := in.CommodityRange(i)
		_, lmin := in.MinLatency(i, pathLat)
		for g := lo; g < hi; g++ {
			if pathLat[g] > lmin+delta {
				vol += f[g]
			}
		}
	}
	return vol
}

// WeakUnsatisfiedVolume returns the total volume of weakly δ-unsatisfied
// agents (Definition 4): flow on paths P with ℓ_P > L_i + δ.
func (in *Instance) WeakUnsatisfiedVolume(f Vector, pathLat []float64, delta float64) float64 {
	vol := 0.0
	for i := range in.commodities {
		lo, hi := in.CommodityRange(i)
		li := in.AvgLatency(i, f, pathLat)
		for g := lo; g < hi; g++ {
			if pathLat[g] > li+delta {
				vol += f[g]
			}
		}
	}
	return vol
}

// AtApproxEquilibrium reports whether f is at a (δ,ε)-equilibrium: the volume
// of δ-unsatisfied agents is at most ε.
func (in *Instance) AtApproxEquilibrium(f Vector, pathLat []float64, delta, eps float64) bool {
	return in.UnsatisfiedVolume(f, pathLat, delta) <= eps
}

// AtWeakApproxEquilibrium reports whether f is at a weak (δ,ε)-equilibrium.
func (in *Instance) AtWeakApproxEquilibrium(f Vector, pathLat []float64, delta, eps float64) bool {
	return in.WeakUnsatisfiedVolume(f, pathLat, delta) <= eps
}

// AtWardropEquilibrium reports whether f satisfies Definition 1 within
// tolerance: every used path's latency is within tol of its commodity's
// minimum.
func (in *Instance) AtWardropEquilibrium(f Vector, tol float64) bool {
	pathLat := in.PathLatencies(f)
	for i := range in.commodities {
		lo, hi := in.CommodityRange(i)
		_, lmin := in.MinLatency(i, pathLat)
		for g := lo; g < hi; g++ {
			if f[g] > tol && pathLat[g] > lmin+tol {
				return false
			}
		}
	}
	return true
}

// Potential evaluates the Beckmann–McGuire–Winsten potential
// Φ(f) = Σ_e ∫₀^{f_e} ℓ_e(u) du.
func (in *Instance) Potential(f Vector) float64 {
	fe := in.EdgeFlows(f, nil)
	return in.PotentialFromEdges(fe)
}

// PotentialFromEdges evaluates Φ given precomputed edge flows.
func (in *Instance) PotentialFromEdges(edgeFlows []float64) float64 {
	phi := 0.0
	for e, fe := range edgeFlows {
		phi += in.latencies[e].Integral(fe)
	}
	return phi
}

// VirtualGain computes the paper's virtual potential gain (Eq. 8) of a phase
// moving the flow from fHat to f while the board shows latencies ℓ(f̂):
// V(f̂,f) = Σ_e ℓ_e(f̂_e)·(f_e − f̂_e).
func (in *Instance) VirtualGain(fHat, f Vector) float64 {
	feHat := in.EdgeFlows(fHat, nil)
	fe := in.EdgeFlows(f, nil)
	leHat := in.EdgeLatencies(feHat, nil)
	v := 0.0
	for e := range fe {
		v += leHat[e] * (fe[e] - feHat[e])
	}
	return v
}

// ErrorTerms computes the paper's per-edge error terms (Eq. 7)
// U_e = ∫_{f̂_e}^{f_e} (ℓ_e(u) − ℓ_e(f̂_e)) du, which together with the
// virtual gain reconstruct the true potential change (Lemma 3).
func (in *Instance) ErrorTerms(fHat, f Vector) []float64 {
	feHat := in.EdgeFlows(fHat, nil)
	fe := in.EdgeFlows(f, nil)
	out := make([]float64, len(fe))
	for e := range fe {
		lHat := in.latencies[e].Value(feHat[e])
		out[e] = in.latencies[e].Integral(fe[e]) - in.latencies[e].Integral(feHat[e]) -
			lHat*(fe[e]-feHat[e])
	}
	return out
}

// BestResponse returns the all-or-nothing flow that routes each commodity
// entirely on its minimum-latency path under the given path latencies, with
// ties broken towards the lowest global index.
func (in *Instance) BestResponse(pathLat []float64) Vector {
	b := make(Vector, in.totalPaths)
	for i := range in.commodities {
		idx, _ := in.MinLatency(i, pathLat)
		b[idx] = in.commodities[i].Demand
	}
	return b
}

// Beta is a convenience alias for MaxSlope matching the paper's notation.
func (in *Instance) Beta() float64 { return in.MaxSlope() }

// PotentialLowerBound returns min over a crude grid of 0 — Φ is always
// non-negative for non-negative latency functions; exposed for tests.
func (in *Instance) PotentialLowerBound() float64 { return 0 }

// Gap returns Φ(f) − Φ*, clamped at 0 to absorb round-off when f is at the
// optimum.
func Gap(phi, phiStar float64) float64 {
	return math.Max(0, phi-phiStar)
}
