package flow_test

// Differential tests for the compiled evaluation kernel: the Evaluator
// (full and incremental paths) must reproduce the naive reference methods
// (EdgeFlows / EdgeLatencies / PathLatenciesFromEdges / PotentialFromEdges)
// bit-for-bit across topologies, latency kinds and randomized delta
// sequences — the property the engines' golden-output stability rests on.

import (
	"fmt"
	"math"
	"testing"

	"wardrop/internal/flow"
	"wardrop/internal/graph"
	"wardrop/internal/latency"
	"wardrop/internal/topo"
)

// allKinds returns one instance of every builtin latency kind plus the
// generic wrappers (Scaled/Shifted/Sum), cycled to the requested length.
func allKinds(n int) []latency.Function {
	poly, err := latency.NewPolynomial(0.1, 0, 0.5, 0.2)
	if err != nil {
		panic(err)
	}
	bpr, err := latency.NewBPR(1.0, 0.8)
	if err != nil {
		panic(err)
	}
	mm1, err := latency.NewMM1(1.5)
	if err != nil {
		panic(err)
	}
	pwl, err := latency.NewPiecewiseLinear([]float64{0, 0.3, 1}, []float64{0.1, 0.2, 0.9})
	if err != nil {
		panic(err)
	}
	kinds := []latency.Function{
		latency.Constant{C: 0.4},
		latency.Linear{Slope: 1.2, Offset: 0.1},
		poly,
		latency.Monomial{Coef: 0.7, Degree: 3},
		bpr,
		mm1,
		pwl,
		latency.Kink(2.5),
		latency.Scaled{F: latency.Linear{Slope: 1, Offset: 0.2}, Factor: 0.5},
		latency.Shifted{F: latency.Monomial{Coef: 1, Degree: 2}, Offset: 0.3},
		latency.Sum{A: latency.Constant{C: 0.1}, B: latency.Linear{Slope: 0.8}},
	}
	out := make([]latency.Function, n)
	for i := range out {
		out[i] = kinds[i%len(kinds)]
	}
	return out
}

// mixedGrid builds an n×n grid whose edges cycle through every latency
// kind, exercising all batch groups and the generic fallback on one
// incidence structure.
func mixedGrid(t testing.TB, n int) *flow.Instance {
	t.Helper()
	g := graph.New()
	ids := make([][]graph.NodeID, n)
	for r := 0; r < n; r++ {
		ids[r] = make([]graph.NodeID, n)
		for c := 0; c < n; c++ {
			ids[r][c] = g.MustAddNode(fmt.Sprintf("v%d_%d", r, c))
		}
	}
	edges := 0
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if c+1 < n {
				g.MustAddEdge(ids[r][c], ids[r][c+1])
				edges++
			}
			if r+1 < n {
				g.MustAddEdge(ids[r][c], ids[r+1][c])
				edges++
			}
		}
	}
	inst, err := flow.NewInstance(g, allKinds(edges),
		[]flow.Commodity{{Name: "c0", Source: ids[0][0], Sink: ids[n-1][n-1], Demand: 1}},
		flow.WithMaxPathLen(2*(n-1)))
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// kernelInstances is the differential-test topology zoo: mixed-kind
// parallel links, a mixed-kind grid, a random layered DAG and a
// multi-commodity instance.
func kernelInstances(t testing.TB) map[string]*flow.Instance {
	t.Helper()
	links, err := topo.ParallelLinks(allKinds(11))
	if err != nil {
		t.Fatal(err)
	}
	layered, err := topo.LayeredRandom(3, 4, 0xfeed)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := topo.MultiCommodityParallel(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*flow.Instance{
		"links":   links,
		"grid":    mixedGrid(t, 4),
		"layered": layered,
		"multi":   multi,
	}
}

// reference computes every kernel quantity through the naive methods.
func reference(inst *flow.Instance, f flow.Vector) (fe, le, pl []float64, phi float64) {
	fe = inst.EdgeFlows(f, nil)
	le = inst.EdgeLatencies(fe, nil)
	pl = inst.PathLatenciesFromEdges(le, nil)
	phi = inst.PotentialFromEdges(fe)
	return fe, le, pl, phi
}

// randomFlow draws a non-negative flow with sprinkled exact zeros (the
// reference accumulation skips zero-flow paths; the kernel must too).
func randomFlow(inst *flow.Instance, rng *topo.SplitMix) flow.Vector {
	f := make(flow.Vector, inst.NumPaths())
	for g := range f {
		if rng.Next()%4 == 0 {
			continue
		}
		f[g] = rng.Float64()
	}
	return f
}

// mustEqualBits fails unless got and want are bitwise identical (NaNs with
// equal payloads included).
func mustEqualBits(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d]: got %v (%#x), want %v (%#x)",
				what, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

func TestEvaluatorFullMatchesReference(t *testing.T) {
	for name, inst := range kernelInstances(t) {
		t.Run(name, func(t *testing.T) {
			rng := &topo.SplitMix{State: 1}
			ev := flow.NewEvaluator(inst, nil)
			for trial := 0; trial < 25; trial++ {
				f := randomFlow(inst, rng)
				ev.Eval(f)
				fe, le, pl, phi := reference(inst, f)
				mustEqualBits(t, "edge flows", ev.EdgeFlows(), fe)
				mustEqualBits(t, "edge latencies", ev.EdgeLatencies(), le)
				mustEqualBits(t, "path latencies", ev.PathLatencies(), pl)
				if math.Float64bits(ev.Potential()) != math.Float64bits(phi) {
					t.Fatalf("potential: got %v, want %v", ev.Potential(), phi)
				}
			}
		})
	}
}

func TestEvaluatorIncrementalMatchesReference(t *testing.T) {
	for name, inst := range kernelInstances(t) {
		t.Run(name, func(t *testing.T) {
			rng := &topo.SplitMix{State: 7}
			ev := flow.NewEvaluator(inst, nil)
			f := inst.UniformFlow()
			ev.Eval(f)
			for step := 0; step < 400; step++ {
				// Random within-commodity move, occasionally draining the
				// origin exactly to zero to exercise the skip logic.
				i := int(rng.Next() % uint64(inst.NumCommodities()))
				lo, hi := inst.CommodityRange(i)
				p := lo + int(rng.Next()%uint64(hi-lo))
				q := lo + int(rng.Next()%uint64(hi-lo))
				amount := rng.Float64() * f[p]
				if rng.Next()%8 == 0 {
					amount = f[p]
				}
				ev.ApplyDelta(f, p, q, amount)

				fe, le, pl, phi := reference(inst, f)
				mustEqualBits(t, "edge flows", ev.EdgeFlows(), fe)
				mustEqualBits(t, "edge latencies", ev.EdgeLatencies(), le)
				mustEqualBits(t, "path latencies", ev.PathLatencies(), pl)
				if math.Float64bits(ev.Potential()) != math.Float64bits(phi) {
					t.Fatalf("step %d: potential got %v, want %v", step, ev.Potential(), phi)
				}
				// The incremental state must also coincide bitwise with a
				// fresh evaluator's full pass over the same flow.
				fresh := flow.NewEvaluator(inst, nil)
				fresh.Eval(f)
				mustEqualBits(t, "vs fresh eval", ev.PathLatencies(), fresh.PathLatencies())
			}
		})
	}
}

func TestEvaluatorUpdateFallback(t *testing.T) {
	inst := mixedGrid(t, 4)
	rng := &topo.SplitMix{State: 3}
	ev := flow.NewEvaluator(inst, nil)
	f := inst.UniformFlow()
	ev.Eval(f)
	// Change every path at once: Update must take the full-eval fallback
	// and still agree with the reference.
	changed := make([]int, inst.NumPaths())
	for g := range f {
		changed[g] = g
		f[g] = rng.Float64()
	}
	ev.Update(f, changed)
	_, _, pl, phi := reference(inst, f)
	mustEqualBits(t, "path latencies", ev.PathLatencies(), pl)
	if math.Float64bits(ev.Potential()) != math.Float64bits(phi) {
		t.Fatalf("potential: got %v, want %v", ev.Potential(), phi)
	}
}

func TestWorkspaceReuseAcrossInstances(t *testing.T) {
	// One workspace serving runs on differently-shaped instances in
	// sequence — the sweep worker's lifecycle — must stay correct after
	// each Reset.
	ws := flow.NewWorkspace()
	rng := &topo.SplitMix{State: 9}
	insts := kernelInstances(t)
	for round := 0; round < 3; round++ {
		for name, inst := range insts {
			ws.Reset()
			ev := flow.NewEvaluator(inst, ws)
			f := randomFlow(inst, rng)
			ev.Eval(f)
			_, _, pl, phi := reference(inst, f)
			mustEqualBits(t, name+" path latencies", ev.PathLatencies(), pl)
			if math.Float64bits(ev.Potential()) != math.Float64bits(phi) {
				t.Fatalf("%s: potential got %v, want %v", name, ev.Potential(), phi)
			}
		}
	}
}

func TestBestResponseIntoMatchesBestResponse(t *testing.T) {
	inst := mixedGrid(t, 4)
	rng := &topo.SplitMix{State: 11}
	b := make(flow.Vector, inst.NumPaths())
	for trial := 0; trial < 20; trial++ {
		f := randomFlow(inst, rng)
		pl := inst.PathLatencies(f)
		want := inst.BestResponse(pl)
		inst.BestResponseInto(pl, b)
		mustEqualBits(t, "best response", b, want)
	}
}

func TestProgramGroupSizes(t *testing.T) {
	inst := mixedGrid(t, 4)
	sizes := inst.Program().GroupSizes()
	total := 0
	for _, n := range sizes {
		total += n
	}
	if total != inst.Graph().NumEdges() {
		t.Fatalf("group sizes cover %d edges, want %d (%v)", total, inst.Graph().NumEdges(), sizes)
	}
	// The mixed grid cycles through every kind incl. three generic
	// wrappers, so each specialized group and the fallback must be hit.
	for _, kind := range []string{"constant", "linear", "polynomial", "monomial", "bpr", "mm1", "pwl", "generic"} {
		if sizes[kind] == 0 {
			t.Fatalf("kind %s missing from program groups: %v", kind, sizes)
		}
	}
}
