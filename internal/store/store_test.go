package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// key derives a valid fingerprint key from a label.
func key(label string) string {
	sum := sha256.Sum256([]byte(label))
	return hex.EncodeToString(sum[:])
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := key("doc")
	doc := []byte(`{"result":42}` + "\n")
	if err := s.Put(k, doc); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, doc) {
		t.Fatalf("Get = %q, want %q", got, doc)
	}
	if !s.Has(k) {
		t.Error("Has = false after Put")
	}
	// Objects are immutable: a second Put with different bytes must not
	// clobber the stored object.
	if err := s.Put(k, []byte("other")); err != nil {
		t.Fatal(err)
	}
	got, err = s.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, doc) {
		t.Fatalf("Get after duplicate Put = %q, want original %q", got, doc)
	}
	st := s.Stats()
	if st.Objects != 1 || st.Bytes != int64(len(doc)) {
		t.Errorf("Stats = %+v, want 1 object / %d bytes", st, len(doc))
	}
}

func TestMissingAndBadKeys(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(key("nope")); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(missing) = %v, want ErrNotFound", err)
	}
	for _, bad := range []string{"", "abc", "../../../../etc/passwd", key("x")[:63] + "G"} {
		if err := s.Put(bad, []byte("x")); !errors.Is(err, ErrBadKey) {
			t.Errorf("Put(%q) = %v, want ErrBadKey", bad, err)
		}
		if _, err := s.Get(bad); !errors.Is(err, ErrBadKey) {
			t.Errorf("Get(%q) = %v, want ErrBadKey", bad, err)
		}
		if s.Has(bad) {
			t.Errorf("Has(%q) = true", bad)
		}
	}
}

// TestDurableAcrossReopen is the restart contract: objects written by one
// Store instance are served by a fresh instance on the same directory, and
// the census picks up their sizes.
func TestDurableAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	docs := map[string][]byte{}
	for i := 0; i < 10; i++ {
		k := key(fmt.Sprint("doc", i))
		docs[k] = []byte(fmt.Sprintf(`{"i":%d}`, i))
		if err := s1.Put(k, docs[k]); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range docs {
		got, err := s2.Get(k)
		if err != nil {
			t.Fatalf("Get(%s) after reopen: %v", k[:8], err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Get(%s) = %q, want %q", k[:8], got, want)
		}
	}
	if st := s2.Stats(); st.Objects != 10 {
		t.Errorf("reopened Stats.Objects = %d, want 10", st.Objects)
	}
}

// TestCorruptionDetectedOnRead flips payload bytes on disk and expects the
// re-hash on read to quarantine the object instead of serving garbage.
func TestCorruptionDetectedOnRead(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := key("victim")
	doc := []byte(`{"fine":true}`)
	if err := s.Put(k, doc); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "objects", k[:2], k[2:])
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xff // flip a payload byte, leave the header intact
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(k); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get(corrupt) = %v, want ErrCorrupt", err)
	}
	// The corrupt object was removed, so the slot reads as missing and a
	// fresh Put heals it.
	if _, err := s.Get(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after quarantine = %v, want ErrNotFound", err)
	}
	if err := s.Put(k, doc); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(k)
	if err != nil || !bytes.Equal(got, doc) {
		t.Fatalf("Get after heal = %q, %v", got, err)
	}
}

// TestHeaderGarbageIsCorrupt covers the other damage class: a mangled
// header (truncation, wrong magic) must also read as ErrCorrupt.
func TestHeaderGarbageIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, garbage := range [][]byte{
		nil,                            // empty file
		[]byte("wardstore1"),           // truncated header, no newline
		[]byte("notmagic x 3\nabc"),    // wrong magic
		[]byte("wardstore1 zz 3\nabc"), // undecodable digest
		[]byte("wardstore1 " + key("x") + " -1\nabc"),  // negative length
		[]byte("wardstore1 " + key("x") + " 999\nabc"), // short payload
	} {
		k := key(fmt.Sprint("g", i))
		path := filepath.Join(dir, "objects", k[:2], k[2:])
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, garbage, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get(k); !errors.Is(err, ErrCorrupt) {
			t.Errorf("case %d: Get = %v, want ErrCorrupt", i, err)
		}
	}
}

// TestSweepEvictsLeastRecentlyUsed fills the store past its budget and
// checks the sweep keeps the recently read objects.
func TestSweepEvictsLeastRecentlyUsed(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 1000)
	s, err := Open(dir, Options{MaxBytes: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 8)
	base := time.Now().Add(-time.Hour)
	for i := range keys {
		keys[i] = key(fmt.Sprint("obj", i))
		if err := s.Put(keys[i], payload); err != nil {
			t.Fatal(err)
		}
		// Pin distinct mtimes so the LRU order is unambiguous regardless of
		// filesystem timestamp granularity.
		path := filepath.Join(dir, "objects", keys[i][:2], keys[i][2:])
		when := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(path, when, when); err != nil {
			t.Fatal(err)
		}
	}
	// Shrink the budget to 3 objects' worth and sweep: the 5 oldest go.
	s.max = 3000
	removed, freed, err := s.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 5 || freed != 5000 {
		t.Fatalf("Sweep removed %d objects / %d bytes, want 5 / 5000", removed, freed)
	}
	for i, k := range keys {
		has := s.Has(k)
		if want := i >= 5; has != want {
			t.Errorf("object %d survived=%v, want %v", i, has, want)
		}
	}
	if st := s.Stats(); st.Objects != 3 || st.Bytes != 3000 {
		t.Errorf("Stats after sweep = %+v, want 3 objects / 3000 bytes", st)
	}
}

// TestPutSweepsWhenOverBudget checks the opportunistic sweep on the write
// path: a store with a tight budget stays at or under it.
func TestPutSweepsWhenOverBudget(t *testing.T) {
	payload := bytes.Repeat([]byte("y"), 1000)
	s, err := Open(t.TempDir(), Options{MaxBytes: 2500})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(key(fmt.Sprint("b", i)), payload); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Bytes > 2500 {
		t.Errorf("Stats.Bytes = %d, want <= budget 2500", st.Bytes)
	}
}

// TestConcurrentHammer is the -race workout: concurrent writers and readers
// over overlapping key sets, with a budget forcing concurrent sweeps.
func TestConcurrentHammer(t *testing.T) {
	s, err := Open(t.TempDir(), Options{MaxBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	const (
		goroutines = 8
		iterations = 60
		sharedKeys = 10
	)
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				k := key(fmt.Sprint("shared", (g+i)%sharedKeys))
				doc := []byte(fmt.Sprintf(`{"k":%d}`, (g+i)%sharedKeys))
				if i%3 == 0 {
					k = key(fmt.Sprint("own", g, i))
					doc = bytes.Repeat([]byte{byte(g)}, 512)
				}
				if err := s.Put(k, doc); err != nil {
					errCh <- err
					return
				}
				if _, err := s.Get(k); err != nil && !errors.Is(err, ErrNotFound) {
					// A concurrent sweep may evict between Put and Get;
					// anything else (corruption, IO) is a real failure.
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if _, _, err := s.Sweep(); err != nil {
		t.Error(err)
	}
}

// TestSharedDirectoryBetweenStores emulates two server processes sharing
// one -store directory: objects written through either instance are visible
// to both.
func TestSharedDirectoryBetweenStores(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := key("cross")
	if err := a.Put(k, []byte("from-a")); err != nil {
		t.Fatal(err)
	}
	got, err := b.Get(k)
	if err != nil || !bytes.Equal(got, []byte("from-a")) {
		t.Fatalf("b.Get = %q, %v", got, err)
	}
	k2 := key("cross2")
	if err := b.Put(k2, []byte("from-b")); err != nil {
		t.Fatal(err)
	}
	if got, err := a.Get(k2); err != nil || !bytes.Equal(got, []byte("from-b")) {
		t.Fatalf("a.Get = %q, %v", got, err)
	}
}
