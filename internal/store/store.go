// Package store is the durable second tier behind the serving layer's
// in-memory result cache: a filesystem content-addressed store keyed by the
// canonical-JSON SHA-256 fingerprints from internal/canon. Every object is
// one immutable result document filed under its fingerprint in a sharded
// objects/ab/cdef… layout, written atomically (tmp file + rename) so readers
// — including other processes sharing the directory — never observe a
// partial object. Reads re-hash the payload against the digest recorded in
// the object header, so disk corruption surfaces as a miss instead of a
// poisoned result; a size-budgeted sweep evicts the least recently used
// objects when the store outgrows its budget.
package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Sentinel errors.
var (
	// ErrNotFound reports a fingerprint with no stored object.
	ErrNotFound = errors.New("store: object not found")
	// ErrCorrupt reports an object whose payload no longer matches its
	// recorded digest (or whose header is unreadable); the object is removed
	// so the next Put can heal it.
	ErrCorrupt = errors.New("store: object corrupt")
	// ErrBadKey reports a key that is not a 64-character lowercase-hex
	// fingerprint.
	ErrBadKey = errors.New("store: key is not a sha-256 fingerprint")
)

// header is the object preamble: magic, payload digest, payload length.
// Keeping the digest in the object (rather than trusting the file name)
// makes corruption detection independent of where the object was filed.
const headerMagic = "wardstore1"

// Options parameterises a Store.
type Options struct {
	// MaxBytes is the payload size budget enforced by Sweep (and by Put,
	// which sweeps opportunistically after crossing it). 0 means unbudgeted.
	MaxBytes int64
}

// Stats is a point-in-time census of the store.
type Stats struct {
	// Objects and Bytes count stored objects and their payload bytes.
	Objects int64 `json:"objects"`
	Bytes   int64 `json:"bytes"`
	// MaxBytes echoes the configured budget (0: unbudgeted).
	MaxBytes int64 `json:"maxBytes"`
}

// Store is a fingerprint-keyed object store rooted at one directory. It is
// safe for concurrent use, including by multiple processes sharing the
// directory: writes are atomic renames, reads validate digests, and eviction
// races degrade to misses.
type Store struct {
	dir string
	max int64

	// mu serialises the in-process size accounting and the sweep; readers
	// never take it.
	mu      sync.Mutex
	bytes   int64 // approximate payload bytes (exact for single-process use)
	objects int64
}

// Open initialises the store directory (creating objects/ and tmp/) and
// indexes the existing objects for size accounting.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxBytes < 0 {
		return nil, fmt.Errorf("store: negative MaxBytes %d", opts.MaxBytes)
	}
	for _, sub := range []string{objectsDir, tmpDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	s := &Store{dir: dir, max: opts.MaxBytes}
	objects, bytes, err := s.census()
	if err != nil {
		return nil, err
	}
	s.objects, s.bytes = objects, bytes
	return s, nil
}

const (
	objectsDir = "objects"
	tmpDir     = "tmp"
)

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path files a fingerprint under objects/ab/cdef….
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, objectsDir, key[:2], key[2:])
}

// validKey accepts exactly the lowercase-hex SHA-256 alphabet internal/canon
// emits; anything else would escape the sharded layout.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Put stores data under the fingerprint key. Objects are immutable: a key
// that already exists is left untouched (results are deterministic per
// fingerprint, so the stored bytes are already the right ones). The write is
// atomic — a tmp file in the same filesystem renamed into place — so
// concurrent readers and writers, in this process or another, never observe
// a torn object.
func (s *Store) Put(key string, data []byte) error {
	if !validKey(key) {
		return fmt.Errorf("%w: %q", ErrBadKey, key)
	}
	dst := s.path(key)
	if _, err := os.Stat(dst); err == nil {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Join(s.dir, tmpDir), "put-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	sum := sha256.Sum256(data)
	w := bufio.NewWriter(tmp)
	if _, err := fmt.Fprintf(w, "%s %s %d\n", headerMagic, hex.EncodeToString(sum[:]), len(data)); err == nil {
		_, err = w.Write(data)
		if err == nil {
			err = w.Flush()
		}
	}
	if err != nil {
		tmp.Close()
		return err
	}
	// The fsync is the durability half of the contract: after Put returns,
	// a crashed-and-restarted server still serves the fingerprint.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return err
	}
	s.mu.Lock()
	s.objects++
	s.bytes += int64(len(data))
	over := s.max > 0 && s.bytes > s.max
	s.mu.Unlock()
	if over {
		_, _, err = s.Sweep()
	}
	return err
}

// Get returns the payload stored under key. A missing object returns
// ErrNotFound; an object whose payload fails digest validation is removed
// and returns ErrCorrupt. Successful reads touch the object's mtime, making
// the sweep's eviction order least-recently-used rather than
// least-recently-written.
func (s *Store) Get(key string) ([]byte, error) {
	if !validKey(key) {
		return nil, fmt.Errorf("%w: %q", ErrBadKey, key)
	}
	path := s.path(key)
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, ErrNotFound
		}
		return nil, err
	}
	defer f.Close()
	data, err := readObject(f)
	if err != nil {
		// Quarantine by deletion: the next Put recomputes the result and
		// heals the slot. The accounting loses the (unknowable) corrupt
		// payload size; the next census corrects any drift.
		os.Remove(path)
		s.mu.Lock()
		if s.objects > 0 {
			s.objects--
		}
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, key, err)
	}
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	return data, nil
}

// readObject parses and validates one object file.
func readObject(r io.Reader) ([]byte, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("header: %v", err)
	}
	fields := strings.Fields(strings.TrimSuffix(line, "\n"))
	if len(fields) != 3 || fields[0] != headerMagic {
		return nil, errors.New("bad header")
	}
	want, err := hex.DecodeString(fields[1])
	if err != nil || len(want) != sha256.Size {
		return nil, errors.New("bad header digest")
	}
	n, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil || n < 0 {
		return nil, errors.New("bad header length")
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(br, data); err != nil {
		return nil, fmt.Errorf("payload: %v", err)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, errors.New("trailing data after payload")
	}
	sum := sha256.Sum256(data)
	for i := range sum {
		if sum[i] != want[i] {
			return nil, errors.New("digest mismatch")
		}
	}
	return data, nil
}

// Has reports whether an object exists for key without reading it.
func (s *Store) Has(key string) bool {
	if !validKey(key) {
		return false
	}
	_, err := os.Stat(s.path(key))
	return err == nil
}

// Stats reports the store's current census from the in-process accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Objects: s.objects, Bytes: s.bytes, MaxBytes: s.max}
}

// object is one indexed entry of the on-disk census.
type object struct {
	path  string
	bytes int64
	mtime time.Time
}

// census walks the objects tree. Object payload size is the file size minus
// its header line; files that are not valid object names are ignored.
func (s *Store) census() (objects, bytes int64, err error) {
	_, objs, err := s.index()
	if err != nil {
		return 0, 0, err
	}
	for _, o := range objs {
		bytes += o.bytes
	}
	return int64(len(objs)), bytes, nil
}

// index lists every stored object with size and mtime.
func (s *Store) index() (total int64, objs []object, err error) {
	root := filepath.Join(s.dir, objectsDir)
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			// A shard removed mid-walk (concurrent eviction) is not an error.
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		if d.IsDir() {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		payload := info.Size() - objectHeaderSize(path)
		if payload < 0 {
			payload = 0
		}
		objs = append(objs, object{path: path, bytes: payload, mtime: info.ModTime()})
		total += payload
		return nil
	})
	return total, objs, err
}

// objectHeaderSize computes the header length for the object at path from
// its file name (the digest length is fixed, the payload length varies but
// the header is one short first line; an estimate from the file is fine for
// budgeting). To stay exact we read the first line's length lazily only in
// Sweep; for census purposes the fixed part dominates. Returns the length of
// "wardstore1 <64 hex> " plus up to 20 digits and the newline, conservatively
// the minimum fixed size.
func objectHeaderSize(path string) int64 {
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 128)
	line, err := br.ReadString('\n')
	if err != nil {
		return 0
	}
	return int64(len(line))
}

// Sweep enforces the size budget: when the payload total exceeds MaxBytes,
// the least recently used objects (by mtime, which Get refreshes) are
// removed until the store fits. It also reconciles the in-process accounting
// with the on-disk truth, so stores shared between processes converge.
func (s *Store) Sweep() (removed int64, freed int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	total, objs, err := s.index()
	if err != nil {
		return 0, 0, err
	}
	if s.max > 0 && total > s.max {
		sort.Slice(objs, func(i, j int) bool { return objs[i].mtime.Before(objs[j].mtime) })
		for _, o := range objs {
			if total <= s.max {
				break
			}
			if err := os.Remove(o.path); err != nil {
				if errors.Is(err, fs.ErrNotExist) {
					continue
				}
				return removed, freed, err
			}
			total -= o.bytes
			removed++
			freed += o.bytes
		}
	}
	// Reconcile: recount what survived.
	var objects int64
	var bytes int64
	_, survivors, err := s.index()
	if err != nil {
		return removed, freed, err
	}
	for _, o := range survivors {
		bytes += o.bytes
	}
	objects = int64(len(survivors))
	s.objects, s.bytes = objects, bytes
	return removed, freed, nil
}
