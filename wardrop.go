// Package wardrop is a Go reproduction of "Adaptive routing with stale
// information" (Fischer & Vöcking, PODC 2005 / TCS 410(2009) 3357–3371).
//
// It implements the Wardrop routing model with an infinite population of
// infinitesimal agents, Mitzenmacher's bulletin-board model of stale
// latency information, the paper's two-step adaptive rerouting policies
// (sample a path, migrate with a latency-gain-dependent probability), the
// α-smoothness condition that separates convergent policies from
// oscillating ones, and the fluid-limit dynamics that make all of it
// executable:
//
//   - build a network with NewGraph and latency functions (Linear, Kink,
//     NewBPR, …), then an Instance with NewInstance or a canonical topology
//     (Pigou, Braess, TwoLinkKink, …);
//   - pick a Policy — Replicator (proportional sampling + linear migration,
//     Theorem 7), UniformLinear (Theorem 6), or any Sampler/Migrator combo —
//     and a bulletin-board period, e.g. the provably safe SafeUpdatePeriod;
//   - declare a Scenario (instance + policy + information model + initial
//     flow + run shape), pick an Engine — FluidEngine (stale Eq. 3, or fresh
//     Eq. 1), BestResponseEngine (Eq. 4) or AgentsEngine (finite N) — and
//     execute it with Run(ctx, scenario, opts...), attaching Observers
//     (TrajectoryRecorder, EquilibriumStopper, ProgressReporter, or your
//     own) to watch or stop the run;
//   - compute reference equilibria with SolveEquilibrium and compare using
//     the potential and the (δ,ε)-equilibrium metrics on Instance;
//   - or skip the Go assembly entirely: ParseScenario loads a declarative
//     scenario file (instance-or-topology, policy, update period, engine and
//     run shape — the single-run counterpart of a campaign cell), and every
//     component in it resolves through the registry-driven catalog — extend
//     the library with RegisterLatency, RegisterTopology, RegisterPolicy and
//     RegisterMigrator, and the new names become selectable from instance
//     documents, scenario files, campaign axes and the CLIs alike (list
//     everything with Catalog or wardsim -list).
//
// The quickstart example:
//
//	inst, _ := wardrop.Pigou()
//	pol, _ := wardrop.Replicator(inst.LMax())
//	T, _ := wardrop.SafeUpdatePeriodFor(pol, inst)
//	res, _ := wardrop.Run(ctx, wardrop.Scenario{
//		Instance: inst, Policy: pol, UpdatePeriod: T, Horizon: 100,
//	})
//	fmt.Println(res.Final, res.FinalPotential)
//
// Swapping the dynamics is one field, not a different function:
//
//	wardrop.Scenario{Engine: wardrop.AgentsEngine{N: 10000, Seed: 7}, ...}
//
// The pre-redesign entry points Simulate, SimulateFresh,
// SimulateBestResponse and NewAgentSim remain as deprecated thin adapters
// with byte-identical results.
package wardrop

import (
	"wardrop/internal/flow"
	"wardrop/internal/graph"
	"wardrop/internal/latency"
)

// Graph building ------------------------------------------------------------

// Graph is a directed finite multigraph (parallel edges allowed, self-loops
// rejected).
type Graph = graph.Graph

// NodeID identifies a node.
type NodeID = graph.NodeID

// EdgeID identifies an edge.
type EdgeID = graph.EdgeID

// Path is a simple directed path given by its edge sequence.
type Path = graph.Path

// NewGraph returns an empty graph.
func NewGraph() *Graph { return graph.New() }

// Latency functions ----------------------------------------------------------

// LatencyFunc is an edge latency function ℓ : [0,1] → ℝ≥0 (continuous,
// non-decreasing, bounded slope) with the calculus the dynamics needs.
type LatencyFunc = latency.Function

// Constant is ℓ(x) = C.
type Constant = latency.Constant

// Linear is ℓ(x) = Slope·x + Offset.
type Linear = latency.Linear

// Polynomial is ℓ(x) = Σ Coeffs[i]·x^i with non-negative coefficients.
type Polynomial = latency.Polynomial

// Monomial is ℓ(x) = Coef·x^Degree.
type Monomial = latency.Monomial

// BPR is the Bureau of Public Roads function t0·(1+0.15(x/c)^4).
type BPR = latency.BPR

// MM1 is the queueing latency x/(c−x), c > 1.
type MM1 = latency.MM1

// PiecewiseLinear is a continuous piecewise-linear latency function.
type PiecewiseLinear = latency.PiecewiseLinear

// Kink returns the paper's §3.2 latency max{0, β(x−½)}.
func Kink(beta float64) PiecewiseLinear { return latency.Kink(beta) }

// NewPolynomial validates coefficients and builds a Polynomial.
func NewPolynomial(coeffs ...float64) (Polynomial, error) { return latency.NewPolynomial(coeffs...) }

// NewBPR validates parameters and builds a BPR function.
func NewBPR(freeTime, capacity float64) (BPR, error) { return latency.NewBPR(freeTime, capacity) }

// NewMM1 validates capacity > 1 and builds an MM1 function.
func NewMM1(capacity float64) (MM1, error) { return latency.NewMM1(capacity) }

// Instances and flows ---------------------------------------------------------

// Instance is an immutable Wardrop routing instance: network + latency
// functions + commodities with enumerated path strategy spaces. It exposes
// the paper's measurements: Potential (Beckmann–McGuire–Winsten), per-
// commodity min/average latency, (δ,ε)- and weak (δ,ε)-equilibrium volumes,
// ℓmax, β and D.
type Instance = flow.Instance

// Commodity routes Demand flow units from Source to Sink.
type Commodity = flow.Commodity

// Flow is a path-flow vector indexed by the instance's global path index.
type Flow = flow.Vector

// InstanceOption configures NewInstance.
type InstanceOption = flow.Option

// WithMaxPathLen bounds path enumeration to n edges.
func WithMaxPathLen(n int) InstanceOption { return flow.WithMaxPathLen(n) }

// WithKShortestPaths restricts each commodity's strategy space to its k
// cheapest free-flow paths (Yen's algorithm) — use on graphs whose simple-
// path count explodes.
func WithKShortestPaths(k int) InstanceOption { return flow.WithKShortestPaths(k) }

// NewInstance validates and builds an instance, enumerating each
// commodity's simple paths.
func NewInstance(g *Graph, lats []LatencyFunc, comms []Commodity, opts ...InstanceOption) (*Instance, error) {
	return flow.NewInstance(g, lats, comms, opts...)
}
