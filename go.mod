module wardrop

go 1.24
