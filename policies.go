package wardrop

import (
	"wardrop/internal/policy"
)

// Policies --------------------------------------------------------------------

// Policy bundles a sampling rule and a migration rule — one rerouting policy
// in the paper's two-step class.
type Policy = policy.Policy

// Sampler is a sampling rule σ_PQ.
type Sampler = policy.Sampler

// Migrator is a migration rule µ(ℓ_P, ℓ_Q).
type Migrator = policy.Migrator

// UniformSampler samples each path of the commodity uniformly (§5.1).
type UniformSampler = policy.Uniform

// ProportionalSampler samples a path with probability proportional to its
// flow (§5.2, the replicator's sampling rule).
type ProportionalSampler = policy.Proportional

// BoltzmannSampler is the logit / smoothed-best-response rule of §2.2.
type BoltzmannSampler = policy.Boltzmann

// BetterResponseMigrator always switches to a strictly better path (not
// α-smooth; oscillates under stale information).
type BetterResponseMigrator = policy.BetterResponse

// LinearMigrator is µ = (ℓ_P − ℓ_Q)/ℓmax, the paper's (1/ℓmax)-smooth
// linear migration policy.
type LinearMigrator = policy.Linear

// AlphaLinearMigrator is µ = min{1, α(ℓ_P − ℓ_Q)}.
type AlphaLinearMigrator = policy.AlphaLinear

// Replicator returns proportional sampling + linear migration (Theorem 7).
func Replicator(lmax float64) (Policy, error) { return policy.Replicator(lmax) }

// UniformLinear returns uniform sampling + linear migration (Theorem 6).
func UniformLinear(lmax float64) (Policy, error) { return policy.UniformLinear(lmax) }

// NewLinearMigrator validates ℓmax and builds the linear migration rule.
func NewLinearMigrator(lmax float64) (LinearMigrator, error) { return policy.NewLinear(lmax) }

// SafeUpdatePeriod returns T = 1/(4·D·α·β), the bulletin-board period below
// which Corollary 5 guarantees convergence for α-smooth policies.
func SafeUpdatePeriod(alpha, beta float64, d int) float64 {
	return policy.SafeUpdatePeriod(alpha, beta, d)
}

// SafeUpdatePeriodFor computes the safe period of a policy on an instance,
// or +Inf when degenerate. It returns an error for migration rules without a
// finite smoothness constant (e.g. better response).
func SafeUpdatePeriodFor(p Policy, inst *Instance) (float64, error) {
	return policy.SafeUpdatePeriodFor(p, inst.Beta(), inst.MaxPathLen())
}

// EstimateAlpha numerically estimates a migration rule's smoothness constant
// on [0, lmax]² (+Inf when the rule is not α-smooth for any α).
func EstimateAlpha(m Migrator, lmax float64, gridN int) float64 {
	return policy.EstimateAlpha(m, lmax, gridN)
}

// IsAlphaSmooth verifies Definition 2 for the rule on a grid, including
// tiny-gap probes for the Lipschitz condition at zero.
func IsAlphaSmooth(m Migrator, alpha, lmax float64, gridN int) bool {
	return policy.IsAlphaSmooth(m, alpha, lmax, gridN)
}
