package wardrop_test

import (
	"math"
	"testing"

	"wardrop"
)

// TestQuickstartFlow exercises the documented end-to-end path of the public
// API: topology → policy → safe period → simulate → equilibrium check.
func TestQuickstartFlow(t *testing.T) {
	inst, err := wardrop.Pigou()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := wardrop.Replicator(inst.LMax())
	if err != nil {
		t.Fatal(err)
	}
	T, err := wardrop.SafeUpdatePeriodFor(pol, inst)
	if err != nil {
		t.Fatal(err)
	}
	res, err := wardrop.Simulate(inst, wardrop.SimConfig{
		Policy: pol, UpdatePeriod: T, Horizon: 200,
	}, inst.UniformFlow())
	if err != nil {
		t.Fatal(err)
	}
	if !inst.AtWardropEquilibrium(res.Final, 0.02) {
		t.Errorf("quickstart did not converge: %v", res.Final)
	}
}

func TestBuildCustomInstanceThroughFacade(t *testing.T) {
	g := wardrop.NewGraph()
	s := g.MustAddNode("s")
	d := g.MustAddNode("t")
	g.MustAddEdge(s, d)
	g.MustAddEdge(s, d)
	bpr, err := wardrop.NewBPR(1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := wardrop.NewInstance(g,
		[]wardrop.LatencyFunc{wardrop.Linear{Slope: 1}, bpr},
		[]wardrop.Commodity{{Source: s, Sink: d, Demand: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumPaths() != 2 {
		t.Errorf("paths = %d", inst.NumPaths())
	}
	sol, err := wardrop.SolveEquilibrium(inst, wardrop.SolverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !inst.AtWardropEquilibrium(sol.Flow, 1e-5) {
		t.Error("solver result is not an equilibrium")
	}
}

func TestFacadeBestResponseAndClosedForm(t *testing.T) {
	beta, T := 4.0, 0.5
	inst, err := wardrop.TwoLinkKink(beta)
	if err != nil {
		t.Fatal(err)
	}
	f1, amp, maxT := wardrop.TwoLinkOscillation(beta, T, 0.1)
	if f1 <= 0.5 || amp <= 0 || maxT <= 0 {
		t.Fatalf("closed form degenerate: %g %g %g", f1, amp, maxT)
	}
	res, err := wardrop.SimulateBestResponse(inst, wardrop.BestResponseConfig{
		UpdatePeriod: T, Horizon: 10 * T,
	}, wardrop.Flow{f1, 1 - f1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Final[0]-f1) > 1e-9 {
		t.Errorf("period-2 orbit broken: %v", res.Final)
	}
}

func TestFacadeAgentSim(t *testing.T) {
	inst, err := wardrop.Braess()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := wardrop.Replicator(inst.LMax())
	if err != nil {
		t.Fatal(err)
	}
	sim, err := wardrop.NewAgentSim(inst, wardrop.AgentConfig{
		N: 300, Policy: pol, UpdatePeriod: 0.25, Horizon: 10, Seed: 1, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Feasible(res.Final, 1e-9); err != nil {
		t.Errorf("agent final infeasible: %v", err)
	}
}

func TestFacadeSmoothnessHelpers(t *testing.T) {
	lin, err := wardrop.NewLinearMigrator(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := wardrop.EstimateAlpha(lin, 2, 64); math.Abs(got-0.5) > 1e-6 {
		t.Errorf("EstimateAlpha = %g", got)
	}
	if !wardrop.IsAlphaSmooth(lin, 0.5, 2, 32) {
		t.Error("linear should be 0.5-smooth for lmax=2")
	}
	if wardrop.IsAlphaSmooth(wardrop.BetterResponseMigrator{}, 100, 2, 32) {
		t.Error("better response should fail smoothness")
	}
	if T := wardrop.SafeUpdatePeriod(0.5, 2, 1); math.Abs(T-0.25) > 1e-12 {
		t.Errorf("SafeUpdatePeriod = %g", T)
	}
}

func TestFacadePoA(t *testing.T) {
	inst, err := wardrop.Pigou()
	if err != nil {
		t.Fatal(err)
	}
	poa, _, _, err := wardrop.PriceOfAnarchy(inst, wardrop.SolverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(poa-4.0/3) > 1e-3 {
		t.Errorf("PoA = %g, want 4/3", poa)
	}
}

func TestFacadeTopologies(t *testing.T) {
	for name, mk := range map[string]func() (*wardrop.Instance, error){
		"pigou":   wardrop.Pigou,
		"braess":  wardrop.Braess,
		"kink":    func() (*wardrop.Instance, error) { return wardrop.TwoLinkKink(2) },
		"links":   func() (*wardrop.Instance, error) { return wardrop.LinearParallelLinks(4) },
		"grid":    func() (*wardrop.Instance, error) { return wardrop.GridNetwork(3) },
		"layered": func() (*wardrop.Instance, error) { return wardrop.LayeredRandom(2, 2, 5) },
		"twocomm": wardrop.TwoCommodityOverlap,
		"custom": func() (*wardrop.Instance, error) {
			return wardrop.ParallelLinks([]wardrop.LatencyFunc{
				wardrop.Kink(2), wardrop.Constant{C: 1},
			})
		},
	} {
		inst, err := mk()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := inst.Feasible(inst.UniformFlow(), 1e-9); err != nil {
			t.Errorf("%s: uniform flow infeasible: %v", name, err)
		}
	}
}
